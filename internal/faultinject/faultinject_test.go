package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestArmSpecParsing(t *testing.T) {
	bad := []struct {
		name string
		spec string
	}{
		{"empty", ""},
		{"no equals", "job.exec"},
		{"empty point", "=error:x"},
		{"bad option", "job.exec=panic"},
		{"unknown key", "job.exec=explode:now"},
		{"bad probability", "job.exec=error:x,p:1.5"},
		{"zero probability", "job.exec=error:x,p:0"},
		{"bad count", "job.exec=error:x,count:-1"},
		{"bad delay", "job.exec=delay:fast"},
		{"no action", "job.exec=p:0.5,count:2"},
		{"error and panic", "job.exec=error:x,panic:y"},
		{"duplicate point", "a=error:x;a=error:y"},
	}
	for _, c := range bad {
		if err := New().Arm(c.spec, 1); err == nil {
			t.Errorf("%s: Arm(%q) accepted", c.name, c.spec)
		}
	}

	r := New()
	spec := "job.exec=panic:injected boom,p:0.25,count:3; rescache.get=error:cache offline ;slow.path=delay:10ms"
	if err := r.Arm(spec, 42); err != nil {
		t.Fatalf("Arm(%q): %v", spec, err)
	}
	if !r.Armed() {
		t.Fatal("registry not armed after Arm")
	}
	want := []string{"job.exec", "rescache.get", "slow.path"}
	got := r.Points()
	if len(got) != len(want) {
		t.Fatalf("Points() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Points() = %v, want %v", got, want)
		}
	}
}

func TestFireErrorAndCount(t *testing.T) {
	r := New()
	if err := r.Arm("cache.put=error:dropped,count:2", 1); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if err := r.Fire("cache.put"); err != nil {
			fired++
			if !strings.Contains(err.Error(), "dropped") || !strings.Contains(err.Error(), "cache.put") {
				t.Fatalf("injected error = %q", err)
			}
		}
		if err := r.Fire("unarmed.point"); err != nil {
			t.Fatalf("unarmed point fired: %v", err)
		}
	}
	if fired != 2 {
		t.Fatalf("count:2 fault fired %d times", fired)
	}
	if n := r.Counts()["cache.put"]; n != 2 {
		t.Fatalf("Counts()[cache.put] = %d, want 2", n)
	}
}

func TestFirePanicCarriesPanicValue(t *testing.T) {
	r := New()
	if err := r.Arm("job.exec=panic:injected", 1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v, ok := recover().(PanicValue)
		if !ok {
			t.Fatalf("recovered %T, want PanicValue", v)
		}
		if v.Point != "job.exec" || v.Msg != "injected" {
			t.Fatalf("PanicValue = %+v", v)
		}
	}()
	r.Fire("job.exec")
	t.Fatal("panic fault did not panic")
}

func TestFireDelay(t *testing.T) {
	r := New()
	if err := r.Arm("slow=delay:30ms", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Fire("slow"); err != nil {
		t.Fatalf("latency-only fault returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay fault slept only %s", d)
	}
}

// TestDeterministicBySeed pins the reproducibility contract: equal
// seeds and call sequences inject identical fault counts.
func TestDeterministicBySeed(t *testing.T) {
	run := func(seed int64) (uint64, []bool) {
		r := New()
		if err := r.Arm("p=error:x,p:0.5", seed); err != nil {
			t.Fatal(err)
		}
		pattern := make([]bool, 200)
		for i := range pattern {
			pattern[i] = r.Fire("p") != nil
		}
		return r.Counts()["p"], pattern
	}
	nA, patA := run(7)
	nB, patB := run(7)
	if nA != nB {
		t.Fatalf("same seed injected %d vs %d faults", nA, nB)
	}
	for i := range patA {
		if patA[i] != patB[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	if nA == 0 || nA == 200 {
		t.Fatalf("p:0.5 over 200 calls injected %d faults; RNG not applied", nA)
	}
	if nC, _ := run(8); nC == nA {
		// Different seeds almost surely differ over 200 coin flips; a
		// collision here means the seed is ignored.
		if nD, _ := run(9); nD == nA {
			t.Fatalf("three seeds all injected %d faults; seed ignored", nA)
		}
	}
}

func TestNilAndDisarmed(t *testing.T) {
	var nilReg *Registry
	if err := nilReg.Fire("anything"); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	if nilReg.Armed() {
		t.Fatal("nil registry claims armed")
	}
	nilReg.Disarm() // must not panic
	if c := nilReg.Counts(); c == nil || len(c) != 0 {
		t.Fatalf("nil registry Counts() = %v, want empty map", c)
	}

	r := New()
	if err := r.Arm("x=error:boom", 1); err != nil {
		t.Fatal(err)
	}
	r.Disarm()
	if r.Armed() {
		t.Fatal("registry armed after Disarm")
	}
	if err := r.Fire("x"); err != nil {
		t.Fatalf("disarmed registry fired: %v", err)
	}
}

// TestDisarmedFireZeroAlloc pins the hot-path contract: a disarmed
// Fire must not allocate.
func TestDisarmedFireZeroAlloc(t *testing.T) {
	r := New()
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := r.Fire("job.exec"); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("disarmed Fire allocates %.1f objects per call", allocs)
	}
	var nilReg *Registry
	if allocs := testing.AllocsPerRun(1000, func() {
		nilReg.Fire("job.exec")
	}); allocs != 0 {
		t.Fatalf("nil-registry Fire allocates %.1f objects per call", allocs)
	}
}
