package predictor

// IndirectBTB is the 512-entry indirect-branch target buffer of Table 1
// (iBTB). Indirect jumps whose targets are not returns (so the RAS
// cannot supply them) are predicted from a small target cache indexed by
// the branch PC hashed with recent global target history, which lets it
// distinguish call-site-dependent targets of the same indirect branch.
type IndirectBTB struct {
	btb  *BTB
	hist uint64

	lookups uint64
	correct uint64
}

// NewIndirectBTB builds an iBTB with the given entries and ways.
func NewIndirectBTB(entries, ways int) *IndirectBTB {
	return &IndirectBTB{btb: NewBTB(entries, ways)}
}

func (i *IndirectBTB) index(pc uint64) uint64 {
	return pc ^ (i.hist << 2)
}

// Predict returns the predicted target for the indirect branch at pc.
func (i *IndirectBTB) Predict(pc uint64) (target uint64, ok bool) {
	i.lookups++
	r := i.btb.Lookup(i.index(pc))
	return r.Target, r.Hit
}

// Update trains the iBTB with the resolved target and folds it into the
// path history. predicted/ok must be Predict's output for this instance.
func (i *IndirectBTB) Update(pc, actual uint64, predicted uint64, ok bool) {
	if ok && predicted == actual {
		i.correct++
	}
	i.btb.Update(i.index(pc), actual)
	i.hist = (i.hist<<4 ^ actual>>2) & 0xffff
}

// Accuracy returns the fraction of lookups whose prediction matched.
func (i *IndirectBTB) Accuracy() float64 {
	if i.lookups == 0 {
		return 1
	}
	return float64(i.correct) / float64(i.lookups)
}

// ResetStats zeroes statistics, preserving learned targets.
func (i *IndirectBTB) ResetStats() {
	i.lookups, i.correct = 0, 0
	i.btb.ResetStats()
}
