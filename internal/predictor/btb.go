package predictor

import "thermalherd/internal/core"

// BTB is a set-associative branch target buffer. In the 3D configuration
// it applies the paper's target memoization: the low 16 target bits live
// on the top die with one memoization bit; targets whose upper 48 bits
// match the branch PC's complete on the top die, others stall the
// prediction pipeline one cycle to read the remaining die.
type BTB struct {
	sets    [][]btbEntry
	ways    int
	setMask uint64

	lookups   uint64
	hits      uint64
	fullReads uint64 // hits requiring the lower three die (3D only)
	activity  core.DieActivity
	clock     uint64 // LRU clock, never reset
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64 // bigger = more recently used
}

// NewBTB builds a BTB with the given total entries and associativity.
func NewBTB(entries, ways int) *BTB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("predictor: BTB entries must divide evenly into ways")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("predictor: BTB set count must be a power of two")
	}
	b := &BTB{sets: make([][]btbEntry, nsets), ways: ways, setMask: uint64(nsets - 1)}
	for i := range b.sets {
		b.sets[i] = make([]btbEntry, ways)
	}
	return b
}

func (b *BTB) index(pc uint64) (set uint64, tag uint64) {
	line := pc >> 2
	return line & b.setMask, line >> uint(popcount(b.setMask))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// LookupResult describes one BTB probe.
type LookupResult struct {
	// Hit is true when the branch PC matched a BTB entry.
	Hit bool
	// Target is the predicted target on a hit.
	Target uint64
	// NeedsFullRead is true when, under the 3D target-memoization
	// organization, the target's upper 48 bits had to be fetched from
	// the lower three die (one front-end stall cycle).
	NeedsFullRead bool
}

// Lookup probes the BTB for the branch at pc. The memoization decision is
// recorded regardless of configuration; planar configurations simply
// ignore NeedsFullRead.
func (b *BTB) Lookup(pc uint64) LookupResult {
	b.lookups++
	b.clock++
	set, tag := b.index(pc)
	for w := range b.sets[set] {
		e := &b.sets[set][w]
		if e.valid && e.tag == tag {
			b.hits++
			e.lru = b.clock
			full := core.TargetNeedsFullRead(pc, e.target)
			if full {
				b.fullReads++
				b.activity.RecordFull()
			} else {
				b.activity.RecordAccess(1)
			}
			return LookupResult{Hit: true, Target: e.target, NeedsFullRead: full}
		}
	}
	b.activity.RecordAccess(1) // a miss is detected on the top die
	return LookupResult{}
}

// Update installs or refreshes the target for the branch at pc.
func (b *BTB) Update(pc, target uint64) {
	set, tag := b.index(pc)
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w := range b.sets[set] {
		e := &b.sets[set][w]
		if e.valid && e.tag == tag {
			e.target = target
			e.lru = b.clock
			return
		}
		if !e.valid {
			victim = w
			oldest = 0
		} else if e.lru < oldest {
			victim = w
			oldest = e.lru
		}
	}
	b.sets[set][victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.clock}
}

// ResetStats zeroes probe statistics, preserving BTB contents.
func (b *BTB) ResetStats() {
	b.lookups, b.hits, b.fullReads = 0, 0, 0
	b.activity = core.DieActivity{}
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// FullReadRate returns the fraction of hits requiring the lower die.
func (b *BTB) FullReadRate() float64 {
	if b.hits == 0 {
		return 0
	}
	return float64(b.fullReads) / float64(b.hits)
}

// Activity returns the per-die access activity under target memoization.
func (b *BTB) Activity() core.DieActivity { return b.activity }

// Lookups returns the probe count.
func (b *BTB) Lookups() uint64 { return b.lookups }

// RAS is a fixed-depth return address stack.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS builds a return address stack of the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("predictor: RAS depth must be positive")
	}
	return &RAS{stack: make([]uint64, depth), depth: depth}
}

// Push records a call's return address; overflow wraps, overwriting the
// oldest entry.
func (r *RAS) Push(retAddr uint64) {
	r.stack[r.top%r.depth] = retAddr
	r.top++
}

// Pop predicts a return target; ok is false when the stack is empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%r.depth], true
}
