package predictor

import "testing"

func TestIndirectBTBLearnsFixedTarget(t *testing.T) {
	i := NewIndirectBTB(512, 4)
	pc, target := uint64(0x4000), uint64(0x9000)
	// First encounter: unknown.
	if _, ok := i.Predict(pc); ok {
		t.Error("cold iBTB predicted")
	}
	// The path history folds each resolved target in, so the index only
	// stabilizes after the 16-bit history window fills with the
	// steady-state pattern (4 nibble shifts); train past that point.
	for round := 0; round < 6; round++ {
		p, ok := i.Predict(pc)
		i.Update(pc, target, p, ok)
	}
	got, ok := i.Predict(pc)
	if !ok || got != target {
		t.Errorf("after training: (%#x, %v), want (%#x, true)", got, ok, target)
	}
}

func TestIndirectBTBPathSensitivity(t *testing.T) {
	// The same indirect branch with two alternating targets: path
	// history lets the iBTB disambiguate after training. Alternate the
	// preceding targets so the histories differ.
	i := NewIndirectBTB(512, 4)
	pc := uint64(0x4000)
	leadA, leadB := uint64(0x100), uint64(0x200)
	tgtA, tgtB := uint64(0x8000), uint64(0x8800)
	var correct, total int
	for round := 0; round < 200; round++ {
		var lead, tgt uint64
		if round%2 == 0 {
			lead, tgt = leadA, tgtA
		} else {
			lead, tgt = leadB, tgtB
		}
		// Leading indirect jump establishes path history.
		lt, lok := i.Predict(0x3000)
		i.Update(0x3000, lead, lt, lok)
		// The polymorphic jump.
		p, ok := i.Predict(pc)
		if round > 20 {
			total++
			if ok && p == tgt {
				correct++
			}
		}
		i.Update(pc, tgt, p, ok)
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("path-correlated accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestIndirectBTBAccuracyCounter(t *testing.T) {
	i := NewIndirectBTB(64, 4)
	if i.Accuracy() != 1 {
		t.Error("vacuous accuracy should be 1")
	}
	// Train to the steady state, then measure: accuracy must rise from
	// 0 (cold misses) to something solidly positive, and land between 0
	// and 1 overall.
	for round := 0; round < 12; round++ {
		p, ok := i.Predict(0x10)
		i.Update(0x10, 0x99, p, ok)
	}
	if acc := i.Accuracy(); acc <= 0 || acc >= 1 {
		t.Errorf("mixed-outcome accuracy = %g, want in (0,1)", acc)
	}
	i.ResetStats()
	if i.Accuracy() != 1 {
		t.Error("ResetStats did not clear accuracy")
	}
	// Learned targets survive the reset (the history is steady, so the
	// stabilized index still hits).
	if _, ok := i.Predict(0x10); !ok {
		t.Error("ResetStats dropped learned targets")
	}
}
