package predictor

import (
	"math/rand"
	"testing"
)

func trainAndMeasure(t *testing.T, outcomes func(i int) (pc uint64, taken bool), n int) float64 {
	t.Helper()
	h := NewHybrid()
	var correct int
	for i := 0; i < n; i++ {
		pc, taken := outcomes(i)
		pred := h.Predict(pc)
		if pred == taken {
			correct++
		}
		h.Update(pc, taken, pred)
	}
	return float64(correct) / float64(n)
}

func TestHybridLearnsStronglyBiasedBranches(t *testing.T) {
	acc := trainAndMeasure(t, func(i int) (uint64, bool) {
		pc := uint64(0x1000 + 4*(i%16))
		return pc, (i%16)%2 == 0 // each PC fully biased
	}, 20000)
	if acc < 0.98 {
		t.Errorf("biased-branch accuracy = %.3f, want >= 0.98", acc)
	}
}

func TestHybridLearnsLocalPattern(t *testing.T) {
	// A single branch alternating T,N,T,N is hopeless for bimodal but
	// trivial for the local-history component.
	acc := trainAndMeasure(t, func(i int) (uint64, bool) {
		return 0x4000, i%2 == 0
	}, 20000)
	if acc < 0.95 {
		t.Errorf("alternating-branch accuracy = %.3f, want >= 0.95 (local history)", acc)
	}
}

func TestHybridLearnsGlobalCorrelation(t *testing.T) {
	// Branch B's outcome equals branch A's: global history captures it.
	state := false
	rng := rand.New(rand.NewSource(3))
	step := 0
	acc := trainAndMeasure(t, func(i int) (uint64, bool) {
		if step%2 == 0 {
			state = rng.Float64() < 0.5
			step++
			return 0x8000, state // branch A: random
		}
		step++
		return 0x8004, state // branch B: copies A
	}, 40000)
	// A is unpredictable (~50%), B should be ~100%: overall ≥ ~72%.
	if acc < 0.70 {
		t.Errorf("correlated-pair accuracy = %.3f, want >= 0.70", acc)
	}
}

func TestHybridRandomBranchesNearChance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	acc := trainAndMeasure(t, func(i int) (uint64, bool) {
		return uint64(0x1000 + 4*rng.Intn(512)), rng.Float64() < 0.5
	}, 20000)
	if acc < 0.4 || acc > 0.65 {
		t.Errorf("random-branch accuracy = %.3f, expected near 0.5", acc)
	}
}

func TestHybridAccuracyCounter(t *testing.T) {
	h := NewHybrid()
	if h.Accuracy() != 1 {
		t.Error("vacuous accuracy should be 1")
	}
	pred := h.Predict(0x100)
	h.Update(0x100, pred, pred)
	if h.Accuracy() != 1 {
		t.Error("one correct prediction should give accuracy 1")
	}
	pred = h.Predict(0x100)
	h.Update(0x100, !pred, pred)
	if h.Accuracy() != 0.5 {
		t.Errorf("accuracy = %g, want 0.5", h.Accuracy())
	}
	if h.Predictions() != 2 {
		t.Errorf("predictions = %d, want 2", h.Predictions())
	}
}

func TestHybridDieActivitySplit(t *testing.T) {
	h := NewHybrid()
	for i := 0; i < 10; i++ {
		pred := h.Predict(0x100)
		h.Update(0x100, true, pred)
	}
	reads, writes := h.DieActivity()
	// Predictions read only the direction array (die 0,1).
	if reads[0] != 10 || reads[1] != 10 {
		t.Errorf("direction-die reads = %v, want 10 each on die 0,1", reads)
	}
	if reads[2] != 0 || reads[3] != 0 {
		t.Errorf("hysteresis dies read at predict time: %v", reads)
	}
	// Updates write all four die.
	for d := 0; d < 4; d++ {
		if writes[d] != 10 {
			t.Errorf("die %d writes = %d, want 10", d, writes[d])
		}
	}
}

func TestBTBBasicHitMiss(t *testing.T) {
	b := NewBTB(2048, 4)
	if r := b.Lookup(0x1000); r.Hit {
		t.Error("cold BTB lookup hit")
	}
	b.Update(0x1000, 0x2000)
	r := b.Lookup(0x1000)
	if !r.Hit || r.Target != 0x2000 {
		t.Errorf("lookup = %+v, want hit with target 0x2000", r)
	}
}

func TestBTBTargetMemoization(t *testing.T) {
	b := NewBTB(2048, 4)
	near := uint64(0x40_1000)
	b.Update(near, near+64) // same upper 48 bits
	if r := b.Lookup(near); r.NeedsFullRead {
		t.Error("near target flagged as needing full read")
	}
	far := uint64(0x40_2000)
	b.Update(far, 0x7fff_0000_0000)
	if r := b.Lookup(far); !r.NeedsFullRead {
		t.Error("far target not flagged")
	}
	if b.FullReadRate() != 0.5 {
		t.Errorf("full-read rate = %g, want 0.5", b.FullReadRate())
	}
	// Per-die activity: near hit + far hit → top die 2, lower die 1.
	a := b.Activity()
	if a.Words[0] != 2 || a.Words[1] != 1 {
		t.Errorf("BTB activity = %v, want [2 1 1 1]", a.Words)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := NewBTB(16, 4) // 4 sets: easy to conflict
	// Five branches mapping to the same set: one must be evicted.
	pcs := make([]uint64, 5)
	for i := range pcs {
		pcs[i] = uint64(0x1000 + i*4*4*4) // same set index (4 sets × 4 bytes)
		b.Update(pcs[i], pcs[i]+8)
	}
	hits := 0
	for _, pc := range pcs {
		if b.Lookup(pc).Hit {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("hits after 5-way conflict in 4-way set = %d, want 4", hits)
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	b := NewBTB(16, 4)
	base := uint64(0x1000)
	stride := uint64(4 * 4 * 4)
	// Fill the set and touch entries 1..3 so entry 0 is LRU.
	for i := uint64(0); i < 4; i++ {
		b.Update(base+i*stride, 0x9000+i)
	}
	for i := uint64(1); i < 4; i++ {
		b.Lookup(base + i*stride)
	}
	b.Update(base+4*stride, 0x9999) // evicts the LRU (entry 0)
	if b.Lookup(base).Hit {
		t.Error("LRU entry survived eviction")
	}
	for i := uint64(1); i < 4; i++ {
		if !b.Lookup(base + i*stride).Hit {
			t.Errorf("recently used entry %d evicted", i)
		}
	}
}

func TestBTBUpdateExistingEntry(t *testing.T) {
	b := NewBTB(64, 4)
	b.Update(0x1000, 0x2000)
	b.Update(0x1000, 0x3000)
	if r := b.Lookup(0x1000); r.Target != 0x3000 {
		t.Errorf("target after re-update = %#x, want 0x3000", r.Target)
	}
}

func TestBTBHitRate(t *testing.T) {
	b := NewBTB(64, 4)
	b.Update(0x1000, 0x2000)
	b.Lookup(0x1000) // hit
	b.Lookup(0x5000) // miss
	if b.HitRate() != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", b.HitRate())
	}
	if b.Lookups() != 2 {
		t.Errorf("lookups = %d, want 2", b.Lookups())
	}
}

func TestBTBRejectsBadShapes(t *testing.T) {
	for _, c := range []struct{ entries, ways int }{{0, 4}, {10, 4}, {24, 4}, {16, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBTB(%d,%d) did not panic", c.entries, c.ways)
				}
			}()
			NewBTB(c.entries, c.ways)
		}()
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS popped a value")
	}
	r.Push(0x100)
	r.Push(0x200)
	if v, ok := r.Pop(); !ok || v != 0x200 {
		t.Errorf("pop = (%#x, %v), want 0x200", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 0x100 {
		t.Errorf("pop = (%#x, %v), want 0x100", v, ok)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
}

func TestTwoBitTableRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("newTwoBitTable(3) did not panic")
		}
	}()
	newTwoBitTable(3)
}
