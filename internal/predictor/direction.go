// Package predictor implements the control-flow prediction substrate of
// the simulated machine: the 10KB bimodal/local/global hybrid direction
// predictor of Table 1, the branch target buffers with the paper's 3D
// target memoization, and a return address stack.
//
// For the 3D configurations, the direction predictor models the paper's
// Section 3.7 organization: the two-bit counters are split into a
// direction-bit array (placed on the top two die, accessed at predict and
// update) and a hysteresis-bit array (bottom two die, accessed only at
// update).
//
// Declared deterministic to thermlint: predictor state is part of the
// simulated machine, so identical traces must give identical outcomes.
//
//thermlint:deterministic
package predictor

// twoBitTable is a table of 2-bit saturating counters.
type twoBitTable struct {
	c    []uint8
	mask uint64
}

func newTwoBitTable(entries int) twoBitTable {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predictor: table entries must be a positive power of two")
	}
	t := twoBitTable{c: make([]uint8, entries), mask: uint64(entries - 1)}
	for i := range t.c {
		t.c[i] = 1 // weakly not-taken
	}
	return t
}

func (t *twoBitTable) taken(idx uint64) bool { return t.c[idx&t.mask] >= 2 }

func (t *twoBitTable) update(idx uint64, taken bool) {
	i := idx & t.mask
	if taken {
		if t.c[i] < 3 {
			t.c[i]++
		}
	} else if t.c[i] > 0 {
		t.c[i]--
	}
}

// Hybrid is the bimodal/local/global hybrid predictor. A meta (chooser)
// table of 2-bit counters selects between the global (gshare) component
// and the better of the bimodal/local pair, which are themselves fused by
// a second chooser. Sizing approximates the paper's 10KB budget:
//
//	bimodal 4K × 2b = 1KB, local history 1K × 10b + 4K × 2b ≈ 2.25KB,
//	gshare 8K × 2b = 2KB, choosers 2 × 8K × 2b = 4KB  → ≈ 9.3KB.
type Hybrid struct {
	bimodal twoBitTable
	localPT twoBitTable
	localH  []uint16
	global  twoBitTable
	ghist   uint64
	meta    twoBitTable // global vs. (bimodal/local)
	metaBL  twoBitTable // bimodal vs. local

	preds   uint64
	correct uint64

	// Per-die activity of the 3D split organization: direction bits on
	// die {0,1}, hysteresis bits on die {2,3}. Predictions touch only
	// the direction array; updates touch both.
	dieReads  [4]uint64
	dieWrites [4]uint64
}

const (
	localHistBits    = 10
	localHistEntries = 1024
)

// NewHybrid builds the Table 1 predictor.
func NewHybrid() *Hybrid {
	return &Hybrid{
		bimodal: newTwoBitTable(4096),
		localPT: newTwoBitTable(4096),
		localH:  make([]uint16, localHistEntries),
		global:  newTwoBitTable(8192),
		meta:    newTwoBitTable(8192),
		metaBL:  newTwoBitTable(8192),
	}
}

func (h *Hybrid) localIdx(pc uint64) uint64 {
	hist := uint64(h.localH[(pc>>2)%localHistEntries])
	return hist ^ (pc >> 2 << localHistBits)
}

func (h *Hybrid) globalIdx(pc uint64) uint64 {
	return (pc >> 2) ^ h.ghist
}

// Predict returns the predicted direction for the branch at pc.
func (h *Hybrid) Predict(pc uint64) bool {
	h.preds++
	// A prediction reads direction bits only: top two die.
	h.dieReads[0]++
	h.dieReads[1]++
	b := h.bimodal.taken(pc >> 2)
	l := h.localPT.taken(h.localIdx(pc))
	g := h.global.taken(h.globalIdx(pc))
	bl := b
	if h.metaBL.taken(pc >> 2) {
		bl = l
	}
	if h.meta.taken(h.globalIdx(pc)) {
		return g
	}
	return bl
}

// Update trains all components with the resolved outcome. predicted must
// be the value Predict returned for this branch instance.
func (h *Hybrid) Update(pc uint64, taken, predicted bool) {
	if predicted == taken {
		h.correct++
	}
	// Update touches direction and hysteresis arrays: all four die.
	for d := 0; d < 4; d++ {
		h.dieWrites[d]++
	}
	b := h.bimodal.taken(pc >> 2)
	l := h.localPT.taken(h.localIdx(pc))
	g := h.global.taken(h.globalIdx(pc))

	// Choosers train toward whichever component was right.
	if b != l {
		h.metaBL.update(pc>>2, l == taken)
	}
	bl := b
	if h.metaBL.taken(pc >> 2) {
		bl = l
	}
	if g != bl {
		h.meta.update(h.globalIdx(pc), g == taken)
	}

	h.bimodal.update(pc>>2, taken)
	h.localPT.update(h.localIdx(pc), taken)
	h.global.update(h.globalIdx(pc), taken)

	// Histories.
	lh := &h.localH[(pc>>2)%localHistEntries]
	*lh = (*lh<<1 | boolBit(taken)) & (1<<localHistBits - 1)
	h.ghist = (h.ghist<<1 | uint64(boolBit(taken))) & 0x1fff
}

func boolBit(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

// ResetStats zeroes prediction statistics and die-activity counters,
// preserving all trained predictor state.
func (h *Hybrid) ResetStats() {
	h.preds, h.correct = 0, 0
	h.dieReads, h.dieWrites = [4]uint64{}, [4]uint64{}
}

// Accuracy returns the fraction of correct predictions so far, or 1 when
// no branches have resolved.
func (h *Hybrid) Accuracy() float64 {
	if h.preds == 0 {
		return 1
	}
	return float64(h.correct) / float64(h.preds)
}

// Predictions returns the number of Predict calls.
func (h *Hybrid) Predictions() uint64 { return h.preds }

// DieActivity returns per-die (reads, writes) of the split direction/
// hysteresis organization. Die 0-1 hold direction bits (read every
// prediction), die 2-3 hysteresis bits (written at update only).
func (h *Hybrid) DieActivity() (reads, writes [4]uint64) {
	return h.dieReads, h.dieWrites
}
