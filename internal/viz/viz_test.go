package viz

import (
	"strings"
	"testing"
)

func TestBarChartScaling(t *testing.T) {
	out := BarChart("perf", []Bar{{"Base", 1.0}, {"3D", 2.0}}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	baseHashes := strings.Count(lines[1], "#")
	threeDHashes := strings.Count(lines[2], "#")
	if threeDHashes != 10 || baseHashes != 5 {
		t.Errorf("bar lengths = %d/%d, want 5/10", baseHashes, threeDHashes)
	}
	if !strings.Contains(lines[2], "2.000") {
		t.Errorf("value missing from bar: %q", lines[2])
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	if out := BarChart("t", nil, 10); !strings.HasPrefix(out, "t") {
		t.Error("empty chart should still carry its title")
	}
	out := BarChart("", []Bar{{"a", 0}}, 10)
	if strings.Count(out, "#") != 0 {
		t.Error("zero value should render no bar")
	}
}

func TestGroupedBars(t *testing.T) {
	out := GroupedBars("fig", []string{"G1", "G2"}, []string{"Base", "3D"},
		func(g, s string) float64 {
			if s == "3D" {
				return 2
			}
			return 1
		}, 8)
	for _, want := range []string{"fig", "G1", "G2", "Base", "3D"} {
		if !strings.Contains(out, want) {
			t.Errorf("grouped chart missing %q:\n%s", want, out)
		}
	}
}

func TestSpark(t *testing.T) {
	s := Spark([]float64{0, 1, 2, 3}, true)
	if len(s) != 4 {
		t.Fatalf("sparkline length %d, want 4", len(s))
	}
	if s[0] != '_' || s[3] != '#' {
		t.Errorf("sparkline endpoints wrong: %q", s)
	}
	// Flat series: all minimum glyphs, no panic.
	flat := Spark([]float64{5, 5, 5}, true)
	if flat != "___" {
		t.Errorf("flat sparkline = %q, want ___", flat)
	}
	if Spark(nil, true) != "" {
		t.Error("empty sparkline should be empty")
	}
	// Unicode ramp produces one rune per value.
	u := Spark([]float64{1, 2}, false)
	if n := len([]rune(u)); n != 2 {
		t.Errorf("unicode sparkline runes = %d, want 2", n)
	}
}

func TestSeries(t *testing.T) {
	out := Series("peak", []float64{300, 350}, true)
	for _, want := range []string{"peak", "300.0", "350.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("series missing %q: %q", want, out)
		}
	}
	if !strings.Contains(Series("x", nil, true), "empty") {
		t.Error("empty series not flagged")
	}
}
