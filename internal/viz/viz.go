// Package viz renders small ASCII charts for the experiment harness and
// CLI tools: horizontal bar charts for figure-style group comparisons
// and sparklines for transient traces.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders labelled horizontal bars scaled to width characters,
// with the numeric value appended. Values must be non-negative; the
// scale runs from zero to the maximum value.
func BarChart(title string, bars []Bar, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if len(bars) == 0 {
		return b.String()
	}
	maxV := 0.0
	maxLabel := 0
	for _, bar := range bars {
		if bar.Value > maxV {
			maxV = bar.Value
		}
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	for _, bar := range bars {
		n := 0
		if maxV > 0 {
			n = int(float64(width)*bar.Value/maxV + 0.5)
		}
		fmt.Fprintf(&b, "%-*s |%-*s %.3f\n", maxLabel, bar.Label, width, strings.Repeat("#", n), bar.Value)
	}
	return b.String()
}

// GroupedBars renders one bar per (group, series) pair, grouping rows by
// group label — the shape of the paper's Figure 8 panels.
func GroupedBars(title string, groups []string, series []string, value func(group, series string) float64, width int) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for _, g := range groups {
		bars := make([]Bar, 0, len(series))
		for _, s := range series {
			bars = append(bars, Bar{Label: s, Value: value(g, s)})
		}
		b.WriteString(g)
		b.WriteByte('\n')
		chart := BarChart("", bars, width)
		for _, line := range strings.Split(strings.TrimRight(chart, "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// sparkRamp holds the eight block characters of a sparkline. ASCII
// fallback: use Spark with ascii=true for plain terminals.
var sparkRamp = []rune("▁▂▃▄▅▆▇█")
var asciiRamp = []rune("_.-~=+*#")

// Spark renders values as a one-line sparkline between their min and
// max. With ascii true it uses pure-ASCII shading characters.
func Spark(values []float64, ascii bool) string {
	if len(values) == 0 {
		return ""
	}
	ramp := sparkRamp
	if ascii {
		ramp = asciiRamp
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

// Series renders a labelled sparkline with its endpoints.
func Series(label string, values []float64, ascii bool) string {
	if len(values) == 0 {
		return label + ": (empty)\n"
	}
	return fmt.Sprintf("%s: %s  [%.1f .. %.1f]\n",
		label, Spark(values, ascii), values[0], values[len(values)-1])
}
