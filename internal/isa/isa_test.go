package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripAllOpcodes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for op := Opcode(0); op < numOpcodes; op++ {
		for trial := 0; trial < 50; trial++ {
			in := Instruction{
				Op:  op,
				Rd:  uint8(rng.Intn(NumIntRegs)),
				Rs1: uint8(rng.Intn(NumIntRegs)),
			}
			if op.HasImm() {
				in.Imm = int16(rng.Intn(1 << 16))
			} else {
				in.Rs2 = uint8(rng.Intn(NumIntRegs))
			}
			w, err := Encode(in)
			if err != nil {
				t.Fatalf("Encode(%v): %v", in, err)
			}
			got, err := Decode(w)
			if err != nil {
				t.Fatalf("Decode(%#08x): %v", w, err)
			}
			if got != in {
				t.Fatalf("round trip %v -> %#08x -> %v", in, w, got)
			}
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode(Instruction{Op: numOpcodes}); err == nil {
		t.Error("Encode accepted invalid opcode")
	}
	if _, err := Encode(Instruction{Op: OpAdd, Rd: 40}); err == nil {
		t.Error("Encode accepted out-of-range register")
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	w := uint32(uint32(numOpcodes) << 26)
	if _, err := Decode(w); err == nil {
		t.Error("Decode accepted invalid opcode field")
	}
}

func TestImmSignExtension(t *testing.T) {
	in := Instruction{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -1}
	got, err := Decode(MustEncode(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Imm != -1 {
		t.Errorf("Imm after round trip = %d, want -1", got.Imm)
	}
	in.Imm = -32768
	if got, _ := Decode(MustEncode(in)); got.Imm != -32768 {
		t.Errorf("Imm = %d, want -32768", got.Imm)
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = (%v, %v), want (%v, true)", op.String(), got, ok, op)
		}
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Error("OpcodeByName accepted unknown mnemonic")
	}
}

func TestClassAssignments(t *testing.T) {
	cases := map[Opcode]Class{
		OpAdd:   ClassALU,
		OpSll:   ClassShift,
		OpMul:   ClassMulDiv,
		OpDiv:   ClassMulDiv,
		OpLd:    ClassLoad,
		OpSt:    ClassStore,
		OpFLd:   ClassLoad,
		OpFAdd:  ClassFPAdd,
		OpFMul:  ClassFPMul,
		OpFDiv:  ClassFPDiv,
		OpFSqrt: ClassFPDiv,
		OpBeq:   ClassBranch,
		OpJal:   ClassJump,
		OpJalr:  ClassJump,
		OpNop:   ClassNop,
		OpHalt:  ClassHalt,
	}
	for op, want := range cases {
		if got := op.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", op, got, want)
		}
	}
}

func TestPredicateHelpers(t *testing.T) {
	if !OpLd.IsMem() || !OpSt.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem misclassification")
	}
	if !OpBeq.IsCtrl() || !OpJal.IsCtrl() || OpLd.IsCtrl() {
		t.Error("IsCtrl misclassification")
	}
	if !OpFAdd.IsFP() || OpAdd.IsFP() {
		t.Error("IsFP misclassification")
	}
	if OpSt.WritesRd() || !OpAdd.WritesRd() || !OpJal.WritesRd() {
		t.Error("WritesRd misclassification")
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[Opcode]int{
		OpLd: 8, OpSt: 8, OpFLd: 8, OpFSt: 8,
		OpLw: 4, OpSw: 4, OpLb: 1, OpSb: 1,
		OpAdd: 0, OpBeq: 0,
	}
	for op, want := range cases {
		if got := (Instruction{Op: op}).MemBytes(); got != want {
			t.Errorf("%v.MemBytes() = %d, want %d", op, got, want)
		}
	}
}

func TestDisassemblyForms(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpNop}, "nop"},
		{Instruction{Op: OpHalt}, "halt"},
		{Instruction{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instruction{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Instruction{Op: OpLd, Rd: 5, Rs1: 30, Imm: 16}, "ld r5, 16(r30)"},
		{Instruction{Op: OpFLd, Rd: 2, Rs1: 30, Imm: 8}, "fld f2, 8(r30)"},
		{Instruction{Op: OpBeq, Rd: 1, Rs1: 2, Imm: -8}, "beq r1, r2, -8"},
		{Instruction{Op: OpJal, Rd: 31, Imm: 100}, "jal r31, 100"},
		{Instruction{Op: OpLui, Rd: 3, Imm: 255}, "lui r3, 255"},
		{Instruction{Op: OpFAdd, Rd: 1, Rs1: 2, Rs2: 3}, "fadd f1, f2, f3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestProgramInstAt(t *testing.T) {
	p := &Program{
		Base: 0x1000,
		Code: []uint32{
			MustEncode(Instruction{Op: OpAddi, Rd: 1, Imm: 7}),
			MustEncode(Instruction{Op: OpHalt}),
		},
	}
	in, err := p.InstAt(0x1000)
	if err != nil || in.Op != OpAddi {
		t.Errorf("InstAt(base) = (%v, %v)", in, err)
	}
	in, err = p.InstAt(0x1004)
	if err != nil || in.Op != OpHalt {
		t.Errorf("InstAt(base+4) = (%v, %v)", in, err)
	}
	for _, pc := range []uint64{0x0ffc, 0x1008, 0x1001} {
		if _, err := p.InstAt(pc); err == nil {
			t.Errorf("InstAt(%#x) succeeded, want error", pc)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		// Whatever decodes must re-encode to a word that decodes to the
		// same instruction (the encode→decode fixpoint property).
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		in2, err := Decode(w2)
		return err == nil && in2 == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
