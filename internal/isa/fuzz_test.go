package isa

import "testing"

// FuzzDecode checks that Decode never panics and that anything it
// accepts round-trips through Encode.
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xffffffff))
	f.Add(MustEncode(Instruction{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(MustEncode(Instruction{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -7}))
	f.Add(MustEncode(Instruction{Op: OpJal, Rd: 31, Imm: 100}))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %v does not re-encode: %v", in, err)
		}
		in2, err := Decode(w2)
		if err != nil || in2 != in {
			t.Fatalf("round trip %v -> %#x -> %v (%v)", in, w2, in2, err)
		}
		_ = in.String() // must not panic
	})
}
