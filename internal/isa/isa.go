// Package isa defines TH64, the small 64-bit RISC instruction set used by
// this reproduction of the Thermal Herding paper (HPCA 2007).
//
// TH64 stands in for the Alpha ISA that the paper's SimpleScalar/MASE
// infrastructure executed. It is deliberately minimal — a classic
// load/store three-operand machine with 32 integer and 32 floating-point
// registers and fixed 32-bit instruction encodings — but it is a real ISA:
// instructions encode, decode, disassemble, and execute (see package emu),
// which lets the examples and validation tests exercise the width/value
// locality phenomena the paper exploits on genuine computation.
package isa

import "fmt"

// NumIntRegs and NumFPRegs are the architectural register file sizes.
// Integer register 0 is hardwired to zero, as in MIPS/RISC-V.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Opcode enumerates TH64 operations.
type Opcode uint8

// The TH64 opcode space. R-format ops take (rd, rs1, rs2); I-format ops
// take (rd, rs1, imm16); loads and stores compute rs1+imm. Branches
// compare rs1 against rs2 (or zero) and jump by a signed word offset.
const (
	OpNop Opcode = iota

	// Integer register-register.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpMul
	OpDiv
	OpRem
	OpSlt  // set if less than (signed)
	OpSltu // set if less than (unsigned)

	// Integer register-immediate.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui // rd = imm16 << 16

	// Memory. Ld/St are 64-bit; Lw/Sw are 32-bit (Lw sign-extends);
	// Lb/Sb are 8-bit (Lb sign-extends).
	OpLd
	OpSt
	OpLw
	OpSw
	OpLb
	OpSb

	// Floating point (operates on the FP register file).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFSqrt
	OpFLd // FP load: f[rd] = mem[r[rs1]+imm]
	OpFSt // FP store: mem[r[rs1]+imm] = f[rd]
	OpFCmpLt
	OpI2F // f[rd] = float(r[rs1])
	OpF2I // r[rd] = int(f[rs1])

	// Control flow.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpJal  // rd = return address; pc += offset
	OpJalr // rd = return address; pc = rs1 + imm

	OpHalt

	numOpcodes
)

// Class partitions opcodes by the functional unit and pipeline treatment
// they receive in the timing model.
type Class uint8

// Instruction classes; the timing model maps these onto the issue ports
// and functional units of Table 1 in the paper.
const (
	ClassNop Class = iota
	ClassALU
	ClassShift
	ClassMulDiv
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassHalt
)

// String returns a human-readable class name.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassALU:
		return "alu"
	case ClassShift:
		return "shift"
	case ClassMulDiv:
		return "muldiv"
	case ClassFPAdd:
		return "fpadd"
	case ClassFPMul:
		return "fpmul"
	case ClassFPDiv:
		return "fpdiv"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassHalt:
		return "halt"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// opInfo is the static description of one opcode.
type opInfo struct {
	name     string
	class    Class
	hasImm   bool // I-format (imm16 field valid)
	fp       bool // reads/writes the FP register file
	writesRd bool
}

var opTable = [numOpcodes]opInfo{
	OpNop:  {"nop", ClassNop, false, false, false},
	OpAdd:  {"add", ClassALU, false, false, true},
	OpSub:  {"sub", ClassALU, false, false, true},
	OpAnd:  {"and", ClassALU, false, false, true},
	OpOr:   {"or", ClassALU, false, false, true},
	OpXor:  {"xor", ClassALU, false, false, true},
	OpSll:  {"sll", ClassShift, false, false, true},
	OpSrl:  {"srl", ClassShift, false, false, true},
	OpSra:  {"sra", ClassShift, false, false, true},
	OpMul:  {"mul", ClassMulDiv, false, false, true},
	OpDiv:  {"div", ClassMulDiv, false, false, true},
	OpRem:  {"rem", ClassMulDiv, false, false, true},
	OpSlt:  {"slt", ClassALU, false, false, true},
	OpSltu: {"sltu", ClassALU, false, false, true},

	OpAddi: {"addi", ClassALU, true, false, true},
	OpAndi: {"andi", ClassALU, true, false, true},
	OpOri:  {"ori", ClassALU, true, false, true},
	OpXori: {"xori", ClassALU, true, false, true},
	OpSlli: {"slli", ClassShift, true, false, true},
	OpSrli: {"srli", ClassShift, true, false, true},
	OpSrai: {"srai", ClassShift, true, false, true},
	OpSlti: {"slti", ClassALU, true, false, true},
	OpLui:  {"lui", ClassALU, true, false, true},

	OpLd: {"ld", ClassLoad, true, false, true},
	OpSt: {"st", ClassStore, true, false, false},
	OpLw: {"lw", ClassLoad, true, false, true},
	OpSw: {"sw", ClassStore, true, false, false},
	OpLb: {"lb", ClassLoad, true, false, true},
	OpSb: {"sb", ClassStore, true, false, false},

	OpFAdd:   {"fadd", ClassFPAdd, false, true, true},
	OpFSub:   {"fsub", ClassFPAdd, false, true, true},
	OpFMul:   {"fmul", ClassFPMul, false, true, true},
	OpFDiv:   {"fdiv", ClassFPDiv, false, true, true},
	OpFSqrt:  {"fsqrt", ClassFPDiv, false, true, true},
	OpFLd:    {"fld", ClassLoad, true, true, true},
	OpFSt:    {"fst", ClassStore, true, true, false},
	OpFCmpLt: {"fcmplt", ClassFPAdd, false, true, true},
	OpI2F:    {"i2f", ClassFPAdd, false, true, true},
	OpF2I:    {"f2i", ClassFPAdd, false, true, true},

	OpBeq:  {"beq", ClassBranch, true, false, false},
	OpBne:  {"bne", ClassBranch, true, false, false},
	OpBlt:  {"blt", ClassBranch, true, false, false},
	OpBge:  {"bge", ClassBranch, true, false, false},
	OpJal:  {"jal", ClassJump, true, false, true},
	OpJalr: {"jalr", ClassJump, true, false, true},

	OpHalt: {"halt", ClassHalt, false, false, false},
}

// Valid reports whether op is a defined TH64 opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Class returns the functional-unit class of op.
func (op Opcode) Class() Class {
	if !op.Valid() {
		return ClassNop
	}
	return opTable[op].class
}

// HasImm reports whether op uses the 16-bit immediate field.
func (op Opcode) HasImm() bool { return op.Valid() && opTable[op].hasImm }

// IsFP reports whether op operates on the floating-point register file.
func (op Opcode) IsFP() bool { return op.Valid() && opTable[op].fp }

// WritesRd reports whether op writes a destination register.
func (op Opcode) WritesRd() bool { return op.Valid() && opTable[op].writesRd }

// IsMem reports whether op is a load or store.
func (op Opcode) IsMem() bool {
	c := op.Class()
	return c == ClassLoad || c == ClassStore
}

// IsCtrl reports whether op is a branch or jump.
func (op Opcode) IsCtrl() bool {
	c := op.Class()
	return c == ClassBranch || c == ClassJump
}

// OpcodeByName resolves an assembler mnemonic to its opcode.
func OpcodeByName(name string) (Opcode, bool) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if opTable[op].name == name {
			return op, true
		}
	}
	return 0, false
}

// Instruction is one decoded TH64 instruction. Rd, Rs1, Rs2 index the
// integer or FP register file depending on the opcode. Imm is the
// sign-extended 16-bit immediate for I-format instructions; for branches
// and jumps it is a signed instruction-word offset relative to PC+4.
type Instruction struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int16
}

// MemBytes returns the access width in bytes for loads/stores, or 0 for
// non-memory instructions.
func (in Instruction) MemBytes() int {
	switch in.Op {
	case OpLd, OpSt, OpFLd, OpFSt:
		return 8
	case OpLw, OpSw:
		return 4
	case OpLb, OpSb:
		return 1
	}
	return 0
}

// Encoding layout (32 bits):
//
//	[31:26] opcode
//	[25:21] rd
//	[20:16] rs1
//	[15:11] rs2 (R-format)
//	[15:0]  imm16 (I-format; overlaps rs2 field, which is then 0)
const (
	opcodeShift = 26
	rdShift     = 21
	rs1Shift    = 16
	rs2Shift    = 11
	regMask     = 0x1f
	immMask     = 0xffff
)

// Encode packs in into its 32-bit machine encoding. It returns an error if
// the opcode is invalid or a register index is out of range.
func Encode(in Instruction) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumIntRegs || in.Rs1 >= NumIntRegs || in.Rs2 >= NumIntRegs {
		return 0, fmt.Errorf("isa: register index out of range in %v", in)
	}
	w := uint32(in.Op) << opcodeShift
	w |= uint32(in.Rd&regMask) << rdShift
	w |= uint32(in.Rs1&regMask) << rs1Shift
	if in.Op.HasImm() {
		w |= uint32(uint16(in.Imm))
	} else {
		w |= uint32(in.Rs2&regMask) << rs2Shift
	}
	return w, nil
}

// MustEncode is Encode that panics on error; for use with known-good
// instructions in tests and kernel builders.
func MustEncode(in Instruction) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit machine word into an Instruction.
func Decode(w uint32) (Instruction, error) {
	op := Opcode(w >> opcodeShift)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: invalid opcode %d in %#08x", op, w)
	}
	in := Instruction{
		Op:  op,
		Rd:  uint8((w >> rdShift) & regMask),
		Rs1: uint8((w >> rs1Shift) & regMask),
	}
	if op.HasImm() {
		in.Imm = int16(uint16(w & immMask))
	} else {
		in.Rs2 = uint8((w >> rs2Shift) & regMask)
	}
	return in, nil
}

// String disassembles the instruction.
func (in Instruction) String() string {
	info := opTable[in.Op]
	r := "r"
	if info.fp {
		r = "f"
	}
	switch {
	case in.Op == OpNop || in.Op == OpHalt:
		return info.name
	case in.Op == OpLui:
		return fmt.Sprintf("%s %s%d, %d", info.name, r, in.Rd, in.Imm)
	case in.Op.Class() == ClassLoad:
		return fmt.Sprintf("%s %s%d, %d(r%d)", info.name, r, in.Rd, in.Imm, in.Rs1)
	case in.Op.Class() == ClassStore:
		return fmt.Sprintf("%s %s%d, %d(r%d)", info.name, r, in.Rd, in.Imm, in.Rs1)
	case in.Op.Class() == ClassBranch:
		return fmt.Sprintf("%s r%d, r%d, %d", info.name, in.Rd, in.Rs1, in.Imm)
	case in.Op == OpJal:
		return fmt.Sprintf("%s r%d, %d", info.name, in.Rd, in.Imm)
	case in.Op == OpJalr:
		return fmt.Sprintf("%s r%d, r%d, %d", info.name, in.Rd, in.Rs1, in.Imm)
	case in.Op == OpI2F:
		return fmt.Sprintf("%s f%d, r%d", info.name, in.Rd, in.Rs1)
	case in.Op == OpF2I:
		return fmt.Sprintf("%s r%d, f%d", info.name, in.Rd, in.Rs1)
	case in.Op == OpFSqrt:
		return fmt.Sprintf("%s f%d, f%d", info.name, in.Rd, in.Rs1)
	case info.hasImm:
		return fmt.Sprintf("%s %s%d, %s%d, %d", info.name, r, in.Rd, r, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s %s%d, %s%d, %s%d", info.name, r, in.Rd, r, in.Rs1, r, in.Rs2)
	}
}

// Program is an assembled TH64 program: code at a base address plus
// initialized data segments.
type Program struct {
	// Base is the address of Code[0]; instruction i sits at Base+4*i.
	Base uint64
	// Code holds the encoded instructions.
	Code []uint32
	// Data maps addresses to initialized 64-bit data words.
	Data map[uint64]uint64
	// Labels maps symbolic names to code addresses (for diagnostics).
	Labels map[string]uint64
}

// InstAt decodes the instruction at address pc, or returns an error if pc
// is outside the code segment or misaligned.
func (p *Program) InstAt(pc uint64) (Instruction, error) {
	if pc < p.Base || pc%4 != 0 {
		return Instruction{}, fmt.Errorf("isa: pc %#x outside code segment", pc)
	}
	idx := (pc - p.Base) / 4
	if idx >= uint64(len(p.Code)) {
		return Instruction{}, fmt.Errorf("isa: pc %#x outside code segment", pc)
	}
	return Decode(p.Code[idx])
}
