package emu

import (
	"math/rand"
	"testing"

	"thermalherd/internal/isa"
	"thermalherd/internal/trace"
)

// randomStraightLine builds a random program of non-control instructions
// followed by halt.
func randomStraightLine(rng *rand.Rand, n int) *isa.Program {
	ops := []isa.Opcode{
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpSlt, isa.OpSltu, isa.OpAddi, isa.OpAndi, isa.OpOri,
		isa.OpXori, isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti,
		isa.OpLui, isa.OpLd, isa.OpSt, isa.OpLw, isa.OpSw, isa.OpLb,
		isa.OpSb, isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv,
		isa.OpFSqrt, isa.OpFLd, isa.OpFSt, isa.OpFCmpLt, isa.OpI2F,
		isa.OpF2I, isa.OpNop,
	}
	code := make([]uint32, 0, n+1)
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		in := isa.Instruction{
			Op:  op,
			Rd:  uint8(rng.Intn(isa.NumIntRegs)),
			Rs1: uint8(rng.Intn(8)), // keep base addresses small-ish
		}
		if op.HasImm() {
			in.Imm = int16(rng.Intn(256)) // small positive displacements
		} else {
			in.Rs2 = uint8(rng.Intn(isa.NumIntRegs))
		}
		code = append(code, isa.MustEncode(in))
	}
	code = append(code, isa.MustEncode(isa.Instruction{Op: isa.OpHalt}))
	return &isa.Program{Base: 0x1000, Code: code, Data: map[uint64]uint64{}}
}

// TestRandomProgramInvariants executes random straight-line programs and
// checks architectural invariants: r0 stays zero, every instruction
// retires exactly once, PCs advance sequentially, and the dynamic
// records are well-formed.
func TestRandomProgramInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.Intn(200)
		prog := randomStraightLine(rng, n)
		m := New(prog)
		insts, err := m.Run(10 * (n + 1))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !m.Halted {
			t.Fatalf("trial %d: did not halt", trial)
		}
		if len(insts) != n+1 {
			t.Fatalf("trial %d: executed %d insts, want %d", trial, len(insts), n+1)
		}
		if m.IntRegs[0] != 0 {
			t.Fatalf("trial %d: r0 = %d", trial, m.IntRegs[0])
		}
		for i := range insts {
			in := &insts[i]
			if in.PC != 0x1000+uint64(4*i) {
				t.Fatalf("trial %d inst %d: pc %#x, want %#x", trial, i, in.PC, 0x1000+4*i)
			}
			if in.Dest != trace.RegNone && (in.Dest < 0 || in.Dest >= 64) {
				t.Fatalf("trial %d inst %d: bad dest %d", trial, i, in.Dest)
			}
			if in.IsMem() && in.MemSize == 0 {
				t.Fatalf("trial %d inst %d: memory op without size", trial, i)
			}
			if !in.IsMem() && in.MemSize != 0 {
				t.Fatalf("trial %d inst %d: non-memory op with size %d", trial, i, in.MemSize)
			}
		}
	}
}

// TestMemoryWriteReadConsistency: random stores followed by loads of the
// same size and address must return the stored bytes.
func TestMemoryWriteReadConsistency(t *testing.T) {
	m := New(&isa.Program{Base: 0x1000, Code: []uint32{isa.MustEncode(isa.Instruction{Op: isa.OpHalt})}})
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 2000; i++ {
		addr := rng.Uint64() % (1 << 40)
		size := []int{1, 4, 8}[rng.Intn(3)]
		val := rng.Uint64()
		m.WriteMem(addr, size, val)
		var mask uint64 = (1 << (8 * uint(size))) - 1
		if size == 8 {
			mask = ^uint64(0)
		}
		if got := m.ReadMem(addr, size); got != val&mask {
			t.Fatalf("addr %#x size %d: wrote %#x read %#x", addr, size, val&mask, got)
		}
	}
}
