package emu

import (
	"math"
	"testing"

	"thermalherd/internal/asm"
	"thermalherd/internal/isa"
	"thermalherd/internal/trace"
)

func run(t *testing.T, src string, maxInsts int) (*Machine, []trace.Inst) {
	t.Helper()
	m := New(asm.MustAssemble(src))
	insts, err := m.Run(maxInsts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, insts
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 into r2.
	m, _ := run(t, `
		addi r1, r0, 10
		addi r2, r0, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`, 1000)
	if m.IntRegs[2] != 55 {
		t.Errorf("sum = %d, want 55", m.IntRegs[2])
	}
	if !m.Halted {
		t.Error("machine should have halted")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m, insts := run(t, `
		.data 0x8000 1234
		lui  r5, 0
		ori  r5, r5, 0x8000
		ld   r1, 0(r5)
		addi r1, r1, 1
		st   r1, 8(r5)
		ld   r2, 8(r5)
		halt
	`, 100)
	if m.IntRegs[2] != 1235 {
		t.Errorf("r2 = %d, want 1235", m.IntRegs[2])
	}
	// Check dynamic records carry memory metadata.
	var loads, stores int
	for i := range insts {
		switch insts[i].Class {
		case isa.ClassLoad:
			loads++
			if insts[i].MemSize != 8 {
				t.Errorf("load size = %d, want 8", insts[i].MemSize)
			}
		case isa.ClassStore:
			stores++
			if insts[i].StoreVal != 1235 {
				t.Errorf("store value = %d, want 1235", insts[i].StoreVal)
			}
		}
	}
	if loads != 2 || stores != 1 {
		t.Errorf("loads/stores = %d/%d, want 2/1", loads, stores)
	}
}

func TestSubWordMemory(t *testing.T) {
	m, _ := run(t, `
		addi r1, r0, 0x7f
		sb   r1, 0(r0)
		lb   r2, 0(r0)
		addi r3, r0, -1
		sw   r3, 8(r0)
		lw   r4, 8(r0)
		halt
	`, 100)
	if m.IntRegs[2] != 0x7f {
		t.Errorf("lb = %#x, want 0x7f", m.IntRegs[2])
	}
	if m.IntRegs[4] != ^uint64(0) {
		t.Errorf("lw sign extension = %#x, want all ones", m.IntRegs[4])
	}
}

func TestByteSignExtension(t *testing.T) {
	m, _ := run(t, `
		addi r1, r0, 0xff
		sb   r1, 0(r0)
		lb   r2, 0(r0)
		halt
	`, 100)
	if m.IntRegs[2] != ^uint64(0) {
		t.Errorf("lb(0xff) = %#x, want sign-extended -1", m.IntRegs[2])
	}
}

func TestR0Hardwired(t *testing.T) {
	m, _ := run(t, `
		addi r0, r0, 99
		add  r1, r0, r0
		halt
	`, 100)
	if m.IntRegs[0] != 0 || m.IntRegs[1] != 0 {
		t.Errorf("r0 = %d r1 = %d, want both 0", m.IntRegs[0], m.IntRegs[1])
	}
}

func TestCallReturn(t *testing.T) {
	m, _ := run(t, `
		addi r1, r0, 5
		jal  r31, double
		add  r3, r2, r0
		halt
	double:
		add  r2, r1, r1
		jalr r0, r31, 0
	`, 100)
	if m.IntRegs[3] != 10 {
		t.Errorf("result = %d, want 10", m.IntRegs[3])
	}
}

func TestBranchVariants(t *testing.T) {
	m, _ := run(t, `
		addi r1, r0, 5
		addi r2, r0, 5
		addi r10, r0, 0
		beq  r1, r2, b1
		addi r10, r10, 1 ; skipped
	b1:	bne  r1, r0, b2
		addi r10, r10, 2 ; skipped
	b2:	addi r3, r0, -1
		blt  r3, r0, b3
		addi r10, r10, 4 ; skipped
	b3:	bge  r1, r2, b4
		addi r10, r10, 8 ; skipped
	b4:	halt
	`, 100)
	if m.IntRegs[10] != 0 {
		t.Errorf("r10 = %d, want 0 (all branch shadows skipped)", m.IntRegs[10])
	}
}

func TestMulDivRem(t *testing.T) {
	m, _ := run(t, `
		addi r1, r0, 7
		addi r2, r0, 3
		mul  r3, r1, r2
		div  r4, r1, r2
		rem  r5, r1, r2
		div  r6, r1, r0 ; divide by zero: all ones
		rem  r7, r1, r0 ; remainder by zero: dividend
		halt
	`, 100)
	if m.IntRegs[3] != 21 || m.IntRegs[4] != 2 || m.IntRegs[5] != 1 {
		t.Errorf("mul/div/rem = %d/%d/%d, want 21/2/1", m.IntRegs[3], m.IntRegs[4], m.IntRegs[5])
	}
	if m.IntRegs[6] != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all ones", m.IntRegs[6])
	}
	if m.IntRegs[7] != 7 {
		t.Errorf("rem by zero = %d, want 7", m.IntRegs[7])
	}
}

func TestNegativeDivision(t *testing.T) {
	m, _ := run(t, `
		addi r1, r0, -7
		addi r2, r0, 2
		div  r3, r1, r2
		halt
	`, 100)
	if int64(m.IntRegs[3]) != -3 {
		t.Errorf("-7/2 = %d, want -3 (truncated)", int64(m.IntRegs[3]))
	}
}

func TestFloatingPoint(t *testing.T) {
	m, _ := run(t, `
		addi r1, r0, 9
		i2f  f1, r1
		fsqrt f2, f1
		addi r2, r0, 2
		i2f  f3, r2
		fmul f4, f2, f3  ; 6.0
		fadd f5, f4, f1  ; 15.0
		fsub f6, f5, f3  ; 13.0
		fdiv f7, f6, f3  ; 6.5
		f2i  r3, f7      ; 6
		fcmplt f8, f3, f7 ; 1.0
		halt
	`, 100)
	if m.FPRegs[2] != 3.0 {
		t.Errorf("sqrt(9) = %g, want 3", m.FPRegs[2])
	}
	if m.FPRegs[7] != 6.5 {
		t.Errorf("f7 = %g, want 6.5", m.FPRegs[7])
	}
	if m.IntRegs[3] != 6 {
		t.Errorf("f2i(6.5) = %d, want 6", m.IntRegs[3])
	}
	if m.FPRegs[8] != 1.0 {
		t.Errorf("fcmplt = %g, want 1", m.FPRegs[8])
	}
}

func TestFPMemory(t *testing.T) {
	m, _ := run(t, `
		addi r1, r0, 3
		i2f  f1, r1
		fst  f1, 0(r0)
		fld  f2, 0(r0)
		halt
	`, 100)
	if m.FPRegs[2] != 3.0 {
		t.Errorf("fld round trip = %g, want 3", m.FPRegs[2])
	}
}

func TestDynRecordSources(t *testing.T) {
	_, insts := run(t, `
		addi r1, r0, 1
		addi r2, r0, 2
		add  r3, r1, r2
		st   r3, 0(r30)
		halt
	`, 100)
	addInst := insts[2]
	if addInst.Src1 != 1 || addInst.Src2 != 2 {
		t.Errorf("add sources = (%d,%d), want (1,2)", addInst.Src1, addInst.Src2)
	}
	if addInst.Dest != 3 || addInst.Result != 3 {
		t.Errorf("add dest/result = %d/%d, want 3/3", addInst.Dest, addInst.Result)
	}
	stInst := insts[3]
	if stInst.Class != isa.ClassStore {
		t.Fatalf("expected store, got %v", stInst.Class)
	}
	// Store sources: base register r30 and the stored register r3.
	if stInst.Src1 != 30 || stInst.Src2 != 3 {
		t.Errorf("store sources = (%d,%d), want (30,3)", stInst.Src1, stInst.Src2)
	}
	if stInst.Dest != trace.RegNone {
		t.Errorf("store has dest %d, want none", stInst.Dest)
	}
}

func TestDynRecordFPRegistersOffset(t *testing.T) {
	_, insts := run(t, `
		i2f  f1, r5
		fadd f2, f1, f1
		halt
	`, 100)
	if insts[0].Dest != trace.FPBase+1 {
		t.Errorf("i2f dest = %d, want %d", insts[0].Dest, trace.FPBase+1)
	}
	if insts[1].Src1 != trace.FPBase+1 {
		t.Errorf("fadd src = %d, want %d", insts[1].Src1, trace.FPBase+1)
	}
}

func TestDynRecordBranchTarget(t *testing.T) {
	_, insts := run(t, `
		addi r1, r0, 1
	loop:
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`, 100)
	br := insts[2]
	if br.Class != isa.ClassBranch {
		t.Fatalf("expected branch, got %v", br.Class)
	}
	if br.Taken {
		t.Error("branch should be not-taken (r1 reached 0)")
	}
	if br.Target != asm.DefaultBase+4 {
		t.Errorf("branch target = %#x, want %#x", br.Target, asm.DefaultBase+4)
	}
	if br.NextPC() != br.PC+4 {
		t.Error("not-taken branch NextPC should be PC+4")
	}
}

func TestStackAddressesAreFullWidth(t *testing.T) {
	// The stack pointer convention places stack data at addresses with
	// non-zero upper bits, which is what makes PAM interesting.
	_, insts := run(t, `
		addi r30, r30, -16
		st   r5, 0(r30)
		ld   r6, 0(r30)
		halt
	`, 100)
	for i := range insts {
		if insts[i].IsMem() && insts[i].MemAddr>>16 == 0 {
			t.Errorf("stack access address %#x unexpectedly low-width", insts[i].MemAddr)
		}
	}
}

func TestSourceInterface(t *testing.T) {
	m := New(asm.MustAssemble(`
		addi r1, r0, 3
	loop:
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`))
	src := NewSource(m, 5)
	var n int
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Errorf("capped source yielded %d insts, want 5", n)
	}
	if src.Err() != nil {
		t.Errorf("unexpected error: %v", src.Err())
	}
}

func TestFetchOutsideCodeErrors(t *testing.T) {
	m := New(asm.MustAssemble("nop")) // runs off the end: no halt
	_, err := m.Run(10)
	if err == nil {
		t.Error("running off the code segment should error")
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := New(asm.MustAssemble("halt"))
	addr := uint64(pageSize - 3) // straddles a page boundary
	m.WriteMem(addr, 8, 0x1122334455667788)
	if got := m.ReadMem(addr, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read = %#x", got)
	}
}

func TestLuiOri64BitConstant(t *testing.T) {
	m, _ := run(t, `
		lui  r1, 0xdead
		ori  r1, r1, 0xbeef
		halt
	`, 100)
	if m.IntRegs[1] != 0xdeadbeef {
		t.Errorf("constant = %#x, want 0xdeadbeef", m.IntRegs[1])
	}
}

func TestInstsExecutedCount(t *testing.T) {
	m, insts := run(t, "nop\nnop\nhalt", 100)
	if m.InstsExecuted() != 3 || len(insts) != 3 {
		t.Errorf("executed %d recorded %d, want 3/3", m.InstsExecuted(), len(insts))
	}
	// Stepping a halted machine returns ok=false without error.
	if _, ok, err := m.Step(); ok || err != nil {
		t.Errorf("step after halt = (ok=%v, err=%v), want (false, nil)", ok, err)
	}
}

func TestFPBitsPreservedThroughIntStore(t *testing.T) {
	// fst/fld must move raw bits; NaN payloads survive.
	m := New(asm.MustAssemble(`
		fld f1, 0(r0)
		fst f1, 8(r0)
		halt
	`))
	nan := math.Float64bits(math.NaN()) | 0xdead
	m.WriteMem(0, 8, nan)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadMem(8, 8); got != nan {
		t.Errorf("NaN payload lost: %#x vs %#x", got, nan)
	}
}
