// Package emu is a functional (architectural) emulator for the TH64 ISA.
// It executes assembled programs and emits the dynamic instruction stream
// (trace.Inst) that the timing simulator consumes, so the Thermal Herding
// mechanisms can be validated against value-width and address-locality
// behaviour arising from genuine computation rather than from synthetic
// statistics.
//
// Declared deterministic to thermlint: replaying a program must yield
// the same architectural state and trace every run.
//
//thermlint:deterministic
package emu

import (
	"fmt"
	"math"
	"sort"

	"thermalherd/internal/isa"
	"thermalherd/internal/trace"
)

// Memory layout conventions used by the kernels in package kernels.
const (
	// StackTop is the initial stack pointer (r30). Its upper 48 bits
	// are deliberately non-zero so stack addresses exhibit the
	// full-width-address / stable-upper-bits behaviour PAM exploits.
	StackTop = 0x0000_7fff_ffff_fff0
	// SPReg and LinkReg are the software conventions for the stack
	// pointer and the call return address.
	SPReg   = 30
	LinkReg = 31
)

const pageBits = 12
const pageSize = 1 << pageBits

// Machine is the architectural state of one TH64 hart plus its memory.
type Machine struct {
	PC      uint64
	IntRegs [isa.NumIntRegs]uint64
	FPRegs  [isa.NumFPRegs]float64
	Halted  bool

	prog  *isa.Program
	pages map[uint64]*[pageSize]byte

	instsExecuted uint64
}

// New creates a machine loaded with prog: PC at the program base, the
// data segment initialized, and the stack pointer set to StackTop.
func New(prog *isa.Program) *Machine {
	m := &Machine{
		PC:    prog.Base,
		prog:  prog,
		pages: make(map[uint64]*[pageSize]byte),
	}
	m.IntRegs[SPReg] = StackTop
	// Replay data-segment writes in address order: entries closer than
	// 8 bytes apart overlap, so map iteration order would otherwise
	// leak into the memory image.
	addrs := make([]uint64, 0, len(prog.Data))
	for addr := range prog.Data {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, k int) bool { return addrs[i] < addrs[k] })
	for _, addr := range addrs {
		m.WriteMem(addr, 8, prog.Data[addr])
	}
	return m
}

// InstsExecuted returns the number of instructions retired so far.
func (m *Machine) InstsExecuted() uint64 { return m.instsExecuted }

func (m *Machine) page(addr uint64) *[pageSize]byte {
	key := addr >> pageBits
	p, ok := m.pages[key]
	if !ok {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// ReadMem reads size bytes (1, 4, or 8) little-endian at addr.
func (m *Machine) ReadMem(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		b := m.page(a)[a&(pageSize-1)]
		v |= uint64(b) << (8 * uint(i))
	}
	return v
}

// WriteMem writes the low size bytes of val little-endian at addr.
func (m *Machine) WriteMem(addr uint64, size int, val uint64) {
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		m.page(a)[a&(pageSize-1)] = byte(val >> (8 * uint(i)))
	}
}

func signExtend(v uint64, bits uint) uint64 {
	shift := 64 - bits
	return uint64(int64(v<<shift) >> shift)
}

// Step executes one instruction and returns its dynamic record. ok is
// false when the machine has halted (the halt instruction itself is
// reported with ok=true; subsequent calls return ok=false).
func (m *Machine) Step() (trace.Inst, bool, error) {
	if m.Halted {
		return trace.Inst{}, false, nil
	}
	in, err := m.prog.InstAt(m.PC)
	if err != nil {
		return trace.Inst{}, false, fmt.Errorf("emu: fetch at pc=%#x: %w", m.PC, err)
	}
	dyn := trace.Inst{PC: m.PC, Op: in.Op, Class: in.Op.Class(),
		Dest: trace.RegNone, Src1: trace.RegNone, Src2: trace.RegNone}
	nextPC := m.PC + 4

	reg := func(i uint8) uint64 { return m.IntRegs[i] }
	setInt := func(i uint8, v uint64) {
		if i != 0 {
			m.IntRegs[i] = v
		}
		dyn.Dest = int16(i)
		dyn.Result = v
		if i == 0 {
			dyn.Result = 0
		}
	}
	setFP := func(i uint8, v float64) {
		m.FPRegs[i] = v
		dyn.Dest = trace.FPBase + int16(i)
		dyn.Result = math.Float64bits(v)
	}
	srcInt := func(i uint8) uint64 { dynAddSrc(&dyn, int16(i)); return reg(i) }
	srcFP := func(i uint8) float64 { dynAddSrc(&dyn, trace.FPBase+int16(i)); return m.FPRegs[i] }
	imm := int64(in.Imm)

	switch in.Op {
	case isa.OpNop:

	case isa.OpAdd:
		setInt(in.Rd, srcInt(in.Rs1)+srcInt(in.Rs2))
	case isa.OpSub:
		setInt(in.Rd, srcInt(in.Rs1)-srcInt(in.Rs2))
	case isa.OpAnd:
		setInt(in.Rd, srcInt(in.Rs1)&srcInt(in.Rs2))
	case isa.OpOr:
		setInt(in.Rd, srcInt(in.Rs1)|srcInt(in.Rs2))
	case isa.OpXor:
		setInt(in.Rd, srcInt(in.Rs1)^srcInt(in.Rs2))
	case isa.OpSll:
		setInt(in.Rd, srcInt(in.Rs1)<<(srcInt(in.Rs2)&63))
	case isa.OpSrl:
		setInt(in.Rd, srcInt(in.Rs1)>>(srcInt(in.Rs2)&63))
	case isa.OpSra:
		setInt(in.Rd, uint64(int64(srcInt(in.Rs1))>>(srcInt(in.Rs2)&63)))
	case isa.OpMul:
		setInt(in.Rd, srcInt(in.Rs1)*srcInt(in.Rs2))
	case isa.OpDiv:
		a, b := int64(srcInt(in.Rs1)), int64(srcInt(in.Rs2))
		if b == 0 {
			setInt(in.Rd, ^uint64(0)) // divide-by-zero yields all ones, RISC-V style
		} else {
			setInt(in.Rd, uint64(a/b))
		}
	case isa.OpRem:
		a, b := int64(srcInt(in.Rs1)), int64(srcInt(in.Rs2))
		if b == 0 {
			setInt(in.Rd, uint64(a))
		} else {
			setInt(in.Rd, uint64(a%b))
		}
	case isa.OpSlt:
		v := uint64(0)
		if int64(srcInt(in.Rs1)) < int64(srcInt(in.Rs2)) {
			v = 1
		}
		setInt(in.Rd, v)
	case isa.OpSltu:
		v := uint64(0)
		if srcInt(in.Rs1) < srcInt(in.Rs2) {
			v = 1
		}
		setInt(in.Rd, v)

	case isa.OpAddi:
		setInt(in.Rd, srcInt(in.Rs1)+uint64(imm))
	case isa.OpAndi:
		// Logical immediates zero-extend (MIPS-style), unlike addi.
		setInt(in.Rd, srcInt(in.Rs1)&uint64(uint16(in.Imm)))
	case isa.OpOri:
		setInt(in.Rd, srcInt(in.Rs1)|uint64(uint16(in.Imm)))
	case isa.OpXori:
		setInt(in.Rd, srcInt(in.Rs1)^uint64(uint16(in.Imm)))
	case isa.OpSlli:
		setInt(in.Rd, srcInt(in.Rs1)<<(uint64(uint16(in.Imm))&63))
	case isa.OpSrli:
		setInt(in.Rd, srcInt(in.Rs1)>>(uint64(uint16(in.Imm))&63))
	case isa.OpSrai:
		setInt(in.Rd, uint64(int64(srcInt(in.Rs1))>>(uint64(uint16(in.Imm))&63)))
	case isa.OpSlti:
		v := uint64(0)
		if int64(srcInt(in.Rs1)) < imm {
			v = 1
		}
		setInt(in.Rd, v)
	case isa.OpLui:
		setInt(in.Rd, uint64(uint16(in.Imm))<<16)

	case isa.OpLd, isa.OpLw, isa.OpLb:
		addr := srcInt(in.Rs1) + uint64(imm)
		size := in.MemBytes()
		v := m.ReadMem(addr, size)
		switch in.Op {
		case isa.OpLw:
			v = signExtend(v, 32)
		case isa.OpLb:
			v = signExtend(v, 8)
		}
		dyn.MemAddr, dyn.MemSize = addr, uint8(size)
		setInt(in.Rd, v)
	case isa.OpSt, isa.OpSw, isa.OpSb:
		addr := srcInt(in.Rs1) + uint64(imm)
		size := in.MemBytes()
		v := reg(in.Rd)
		dynAddSrc(&dyn, int16(in.Rd)) // the stored register is a source
		m.WriteMem(addr, size, v)
		dyn.MemAddr, dyn.MemSize = addr, uint8(size)
		dyn.StoreVal = v

	case isa.OpFLd:
		addr := srcInt(in.Rs1) + uint64(imm)
		bits := m.ReadMem(addr, 8)
		dyn.MemAddr, dyn.MemSize = addr, 8
		setFP(in.Rd, math.Float64frombits(bits))
	case isa.OpFSt:
		addr := srcInt(in.Rs1) + uint64(imm)
		bits := math.Float64bits(m.FPRegs[in.Rd])
		dynAddSrc(&dyn, trace.FPBase+int16(in.Rd))
		m.WriteMem(addr, 8, bits)
		dyn.MemAddr, dyn.MemSize = addr, 8
		dyn.StoreVal = bits

	case isa.OpFAdd:
		setFP(in.Rd, srcFP(in.Rs1)+srcFP(in.Rs2))
	case isa.OpFSub:
		setFP(in.Rd, srcFP(in.Rs1)-srcFP(in.Rs2))
	case isa.OpFMul:
		setFP(in.Rd, srcFP(in.Rs1)*srcFP(in.Rs2))
	case isa.OpFDiv:
		setFP(in.Rd, srcFP(in.Rs1)/srcFP(in.Rs2))
	case isa.OpFSqrt:
		setFP(in.Rd, math.Sqrt(srcFP(in.Rs1)))
	case isa.OpFCmpLt:
		v := 0.0
		if srcFP(in.Rs1) < srcFP(in.Rs2) {
			v = 1.0
		}
		setFP(in.Rd, v)
	case isa.OpI2F:
		setFP(in.Rd, float64(int64(srcInt(in.Rs1))))
	case isa.OpF2I:
		setInt(in.Rd, uint64(int64(srcFP(in.Rs1))))

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		a, b := srcInt(in.Rd), srcInt(in.Rs1)
		var taken bool
		switch in.Op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlt:
			taken = int64(a) < int64(b)
		case isa.OpBge:
			taken = int64(a) >= int64(b)
		}
		target := uint64(int64(m.PC+4) + 4*imm)
		dyn.Taken, dyn.Target = taken, target
		if taken {
			nextPC = target
		}
	case isa.OpJal:
		target := uint64(int64(m.PC+4) + 4*imm)
		setInt(in.Rd, m.PC+4)
		dyn.Taken, dyn.Target = true, target
		nextPC = target
	case isa.OpJalr:
		target := (srcInt(in.Rs1) + uint64(imm)) &^ 3
		setInt(in.Rd, m.PC+4)
		dyn.Taken, dyn.Target = true, target
		nextPC = target

	case isa.OpHalt:
		m.Halted = true

	default:
		return trace.Inst{}, false, fmt.Errorf("emu: unimplemented opcode %v at pc=%#x", in.Op, m.PC)
	}

	m.PC = nextPC
	m.instsExecuted++
	return dyn, true, nil
}

func dynAddSrc(d *trace.Inst, r int16) {
	// Register 0 is hardwired zero: not a real dependence.
	if r == 0 {
		return
	}
	if d.Src1 == trace.RegNone {
		d.Src1 = r
	} else if d.Src2 == trace.RegNone && d.Src1 != r {
		d.Src2 = r
	}
}

// Run executes until halt or maxInsts instructions, returning the dynamic
// stream.
func (m *Machine) Run(maxInsts int) ([]trace.Inst, error) {
	out := make([]trace.Inst, 0, 1024)
	for len(out) < maxInsts && !m.Halted {
		dyn, ok, err := m.Step()
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, dyn)
	}
	return out, nil
}

// Source adapts the machine to the trace.Source interface, emitting
// instructions as they execute and stopping at halt, error, or after max
// instructions (0 = unlimited).
type Source struct {
	m     *Machine
	max   uint64
	count uint64
	err   error
}

// NewSource wraps m as a trace.Source producing at most max instructions
// (0 for unlimited).
func NewSource(m *Machine, max uint64) *Source { return &Source{m: m, max: max} }

// Next implements trace.Source.
func (s *Source) Next() (trace.Inst, bool) {
	if s.err != nil || (s.max > 0 && s.count >= s.max) {
		return trace.Inst{}, false
	}
	dyn, ok, err := s.m.Step()
	if err != nil {
		s.err = err
		return trace.Inst{}, false
	}
	if !ok {
		return trace.Inst{}, false
	}
	s.count++
	return dyn, true
}

// Err returns the first execution error encountered, if any.
func (s *Source) Err() error { return s.err }
