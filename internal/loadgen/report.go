package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"thermalherd/internal/stats"
)

// SLO is the service-level contract a run is judged against. Zero
// limits are not enforced (MaxErrorRate 0 still is: it demands an
// error-free run).
type SLO struct {
	// P95 and P99 bound the end-to-end latency quantiles.
	P95 time.Duration
	P99 time.Duration
	// MaxErrorRate bounds (errors + timeouts + failed + canceled) /
	// arrivals. Drops are reported separately: they measure the
	// generator shedding offered load, not the server failing it.
	MaxErrorRate float64
	// TenantP99 bounds one or more tenants' end-to-end p99 latency —
	// the QoS contract: an interactive tenant's tail must hold even
	// when a batch tenant floods the queue. A listed tenant with zero
	// completions is a violation (its traffic was starved out
	// entirely).
	TenantP99 map[string]time.Duration
}

// LatencyStats summarizes one latency histogram in milliseconds.
type LatencyStats struct {
	Count     uint64                  `json:"count"`
	P50Ms     float64                 `json:"p50_ms"`
	P95Ms     float64                 `json:"p95_ms"`
	P99Ms     float64                 `json:"p99_ms"`
	MeanMs    float64                 `json:"mean_ms,omitempty"`
	MaxMs     float64                 `json:"max_ms,omitempty"`
	Histogram stats.HistogramSnapshot `json:"histogram"`
}

// OfferedStats describes the synthesized schedule.
type OfferedStats struct {
	Arrivals    int     `json:"arrivals"`
	DurationSec float64 `json:"duration_sec"`
	RPS         float64 `json:"rps"`
}

// AchievedStats describes what actually happened.
type AchievedStats struct {
	Submitted          int     `json:"submitted"`
	Done               int     `json:"done"`
	CacheHits          int     `json:"cache_hits"`
	Failed             int     `json:"failed"`
	Canceled           int     `json:"canceled"`
	Errors             int     `json:"errors"`
	Timeouts           int     `json:"timeouts"`
	Drops              int     `json:"drops"`
	RPS                float64 `json:"rps"`
	WallSec            float64 `json:"wall_sec"`
	SubmitHTTPRequests int64   `json:"submit_http_requests"`
	PollHTTPRequests   int64   `json:"poll_http_requests"`
	Retries            int64   `json:"retries"`
}

// SLOResult is the evaluated verdict.
type SLOResult struct {
	P95LimitMs   float64  `json:"p95_limit_ms,omitempty"`
	P99LimitMs   float64  `json:"p99_limit_ms,omitempty"`
	MaxErrorRate float64  `json:"max_error_rate"`
	ErrorRate    float64  `json:"error_rate"`
	Pass         bool     `json:"pass"`
	Violations   []string `json:"violations,omitempty"`
}

// Report is the machine-readable BENCH_loadgen.json document: the
// bench trajectory every later performance PR measures itself against.
type Report struct {
	Tool           string        `json:"tool"`
	Mode           Mode          `json:"mode"`
	Seed           int64         `json:"seed"`
	ScheduleSHA256 string        `json:"schedule_sha256"`
	BatchSize      int           `json:"batch_size"`
	MaxInFlight    int           `json:"max_in_flight"`
	Offered        OfferedStats  `json:"offered"`
	Achieved       AchievedStats `json:"achieved"`
	CacheHitRate   float64       `json:"cache_hit_rate"`
	Latency        LatencyStats  `json:"latency"`
	QueueWait      LatencyStats  `json:"queue_wait"`
	// Tenants breaks completion latency down per tenant; present only
	// when the run attributed arrivals to tenants.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
	// Failover is the post-run acked-job reconciliation; present only
	// when thermload ran with -repl (the failover A/B measures it).
	Failover *FailoverStats `json:"failover,omitempty"`
	SLO      SLOResult      `json:"slo"`
}

// FailoverStats is the fleet-wide zero-acked-loss audit: after the
// schedule drains, every job id the daemon acknowledged is re-polled
// through the gateway until it reports a terminal state. Lost counts
// the ids that never did — acked work a failover actually dropped,
// the number the replication ack policy exists to drive to zero.
type FailoverStats struct {
	// Policy is the replication ack policy the run was driven under.
	Policy string `json:"policy"`
	// Acked counts acknowledged submissions (one per ack, so a spec
	// deduped to an existing job still counts its own ack).
	Acked int `json:"acked"`
	// Resolved counts acks whose job reached a terminal state.
	Resolved int `json:"resolved"`
	// Lost counts acks whose job is gone or never settled: 404s after
	// the reconcile deadline, or jobs stuck non-terminal.
	Lost int `json:"lost"`
}

// TenantStats is one tenant's slice of the run.
type TenantStats struct {
	Done  int     `json:"done"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// report reduces the recorder into the final document.
func (r *recorder) report(cfg RunConfig, wall time.Duration) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	arrivals := len(cfg.Schedule)
	rep := &Report{
		Tool:           "thermload",
		Mode:           cfg.Mode,
		Seed:           cfg.Seed,
		ScheduleSHA256: ScheduleSHA256(cfg.Schedule),
		BatchSize:      cfg.BatchSize,
		MaxInFlight:    cfg.MaxInFlight,
		Offered: OfferedStats{
			Arrivals:    arrivals,
			DurationSec: cfg.Schedule[arrivals-1].Seconds(),
			RPS:         OfferedRPS(cfg.Schedule),
		},
		Achieved: AchievedStats{
			Submitted:          r.nSubmitted,
			Done:               r.nDone,
			CacheHits:          r.nCacheHits,
			Failed:             r.nFailed,
			Canceled:           r.nCanceled,
			Errors:             r.nErrors,
			Timeouts:           r.nTimeouts,
			Drops:              r.nDrops,
			WallSec:            wall.Seconds(),
			SubmitHTTPRequests: cfg.Client.SubmitRequests(),
			PollHTTPRequests:   cfg.Client.PollRequests(),
			Retries:            cfg.Client.RetriesUsed(),
		},
		Latency:   latencyStats(r.latency, r.latencySumMs, r.latencyMaxMs),
		QueueWait: latencyStats(r.queueWait, 0, 0),
	}
	if len(r.tenantLat) > 0 {
		rep.Tenants = make(map[string]TenantStats, len(r.tenantLat))
		names := make([]string, 0, len(r.tenantLat))
		for tenant := range r.tenantLat {
			names = append(names, tenant)
		}
		sort.Strings(names)
		for _, tenant := range names {
			snap := r.tenantLat[tenant].Snapshot()
			rep.Tenants[tenant] = TenantStats{
				Done:  r.tenantN[tenant],
				P50Ms: snap.Quantile(0.50),
				P95Ms: snap.Quantile(0.95),
				P99Ms: snap.Quantile(0.99),
			}
		}
	}
	if wall > 0 {
		rep.Achieved.RPS = float64(r.nDone) / wall.Seconds()
	}
	if r.nSubmitted > 0 {
		rep.CacheHitRate = float64(r.nCacheHits) / float64(r.nSubmitted)
	}
	rep.SLO = evalSLO(cfg.SLO, rep, arrivals)
	return rep
}

func latencyStats(h *stats.Histogram, sumMs, maxMs float64) LatencyStats {
	snap := h.Snapshot()
	ls := LatencyStats{
		Count:     snap.Total,
		P50Ms:     snap.Quantile(0.50),
		P95Ms:     snap.Quantile(0.95),
		P99Ms:     snap.Quantile(0.99),
		MaxMs:     maxMs,
		Histogram: snap,
	}
	if snap.Total > 0 && sumMs > 0 {
		ls.MeanMs = sumMs / float64(snap.Total)
	}
	return ls
}

func evalSLO(slo SLO, rep *Report, arrivals int) SLOResult {
	res := SLOResult{
		P95LimitMs:   float64(slo.P95) / float64(time.Millisecond),
		P99LimitMs:   float64(slo.P99) / float64(time.Millisecond),
		MaxErrorRate: slo.MaxErrorRate,
		Pass:         true,
	}
	failures := rep.Achieved.Errors + rep.Achieved.Timeouts + rep.Achieved.Failed + rep.Achieved.Canceled
	if arrivals > 0 {
		res.ErrorRate = float64(failures) / float64(arrivals)
	}
	violate := func(format string, args ...any) {
		res.Pass = false
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if slo.P95 > 0 && rep.Latency.P95Ms > res.P95LimitMs {
		violate("p95 %.1fms > limit %.1fms", rep.Latency.P95Ms, res.P95LimitMs)
	}
	if slo.P99 > 0 && rep.Latency.P99Ms > res.P99LimitMs {
		violate("p99 %.1fms > limit %.1fms", rep.Latency.P99Ms, res.P99LimitMs)
	}
	if res.ErrorRate > slo.MaxErrorRate {
		violate("error rate %.4f > limit %.4f", res.ErrorRate, slo.MaxErrorRate)
	}
	if rep.Latency.Count == 0 {
		violate("no requests completed")
	}
	tenants := make([]string, 0, len(slo.TenantP99))
	for tenant := range slo.TenantP99 {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	for _, tenant := range tenants {
		limitMs := float64(slo.TenantP99[tenant]) / float64(time.Millisecond)
		ts, ok := rep.Tenants[tenant]
		if !ok || ts.Done == 0 {
			violate("tenant %s completed no requests (p99 limit %.1fms)", tenant, limitMs)
			continue
		}
		if ts.P99Ms > limitMs {
			violate("tenant %s p99 %.1fms > limit %.1fms", tenant, ts.P99Ms, limitMs)
		}
	}
	return res
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Summary renders a short human-readable digest for terminal output.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "thermload %s seed=%d: offered %d arrivals (%.1f rps), achieved %.1f rps\n",
		r.Mode, r.Seed, r.Offered.Arrivals, r.Offered.RPS, r.Achieved.RPS)
	fmt.Fprintf(&b, "  done %d (cache %.0f%%)  failed %d  errors %d  timeouts %d  drops %d\n",
		r.Achieved.Done, 100*r.CacheHitRate, r.Achieved.Failed, r.Achieved.Errors,
		r.Achieved.Timeouts, r.Achieved.Drops)
	fmt.Fprintf(&b, "  latency p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms\n",
		r.Latency.P50Ms, r.Latency.P95Ms, r.Latency.P99Ms, r.Latency.MaxMs)
	fmt.Fprintf(&b, "  queue wait p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		r.QueueWait.P50Ms, r.QueueWait.P95Ms, r.QueueWait.P99Ms)
	if len(r.Tenants) > 0 {
		names := make([]string, 0, len(r.Tenants))
		for tenant := range r.Tenants {
			names = append(names, tenant)
		}
		sort.Strings(names)
		for _, tenant := range names {
			ts := r.Tenants[tenant]
			fmt.Fprintf(&b, "  tenant %-8s done %d  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
				tenant, ts.Done, ts.P50Ms, ts.P95Ms, ts.P99Ms)
		}
	}
	if r.Failover != nil {
		fmt.Fprintf(&b, "  failover (repl=%s): %d acked, %d resolved terminal, %d lost\n",
			r.Failover.Policy, r.Failover.Acked, r.Failover.Resolved, r.Failover.Lost)
	}
	if r.SLO.Pass {
		fmt.Fprintf(&b, "  SLO: PASS (error rate %.4f)\n", r.SLO.ErrorRate)
	} else {
		fmt.Fprintf(&b, "  SLO: FAIL — %s\n", strings.Join(r.SLO.Violations, "; "))
	}
	return b.String()
}
