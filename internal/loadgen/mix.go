package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"thermalherd/internal/config"
	"thermalherd/internal/server"
	"thermalherd/internal/trace"
)

// MixEntry is one weighted job template. Empty Workload or Config
// fields are filled per sample by a uniform seeded draw over the 106
// trace.Names() workloads or the config.Registry machine names, so a
// single entry can cover the whole suite. Profile fields for mix files
// can be listed with `benchgen -list -json`.
type MixEntry struct {
	// Kind is the job kind; empty means "timing".
	Kind string `json:"kind,omitempty"`
	// Workload names one workload, or "" to sample uniformly.
	Workload string `json:"workload,omitempty"`
	// Config names one machine configuration, or "" to sample
	// uniformly (timing and thermal kinds only).
	Config string `json:"config,omitempty"`
	// Section is the experiment section (experiment kind only).
	Section string `json:"section,omitempty"`
	// Weight is the entry's relative draw probability; empty means 1.
	Weight float64 `json:"weight,omitempty"`
	// Tenant attributes the entry's jobs to one tenant (the X-Tenant-ID
	// header). Empty means unpinned: jobs draw a synthetic tenant when
	// the run samples with a tenant count, or fall to the daemon's
	// default tenant otherwise.
	Tenant string `json:"tenant,omitempty"`
	// Depths tunes the simulation depth of sampled jobs.
	Depths server.Depths `json:"depths,omitempty"`
}

// Mix is a weighted set of job templates.
type Mix struct {
	Entries []MixEntry `json:"entries"`
}

// DefaultMix drives uniformly sampled timing jobs across every
// workload and machine configuration at load-test depth (a few
// thousand instructions per job, so individual requests settle in
// milliseconds and the harness measures the service, not the
// simulator).
func DefaultMix() Mix {
	return Mix{Entries: []MixEntry{{
		Kind:   string(server.KindTiming),
		Depths: server.Depths{FastForward: 4000, Warmup: 1000, Measure: 2000},
	}}}
}

// LoadMixFile reads a JSON mix file (see examples/mixes/default.json).
func LoadMixFile(path string) (Mix, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Mix{}, fmt.Errorf("loadgen: read mix: %w", err)
	}
	var m Mix
	if err := json.Unmarshal(b, &m); err != nil {
		return Mix{}, fmt.Errorf("loadgen: parse mix %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return Mix{}, fmt.Errorf("loadgen: mix %s: %w", path, err)
	}
	return m, nil
}

// Validate checks the mix's entries against the workload suite and
// configuration registry so bad names fail before the run starts.
func (m Mix) Validate() error {
	if len(m.Entries) == 0 {
		return fmt.Errorf("mix has no entries")
	}
	for i, e := range m.Entries {
		if e.Weight < 0 {
			return fmt.Errorf("entry %d: negative weight %g", i, e.Weight)
		}
		switch e.Kind {
		case "", string(server.KindTiming), string(server.KindThermal):
			if e.Workload != "" {
				if _, err := trace.ProfileByName(e.Workload); err != nil {
					return fmt.Errorf("entry %d: %w", i, err)
				}
			}
			if e.Config != "" {
				if _, err := config.ByName(e.Config); err != nil {
					return fmt.Errorf("entry %d: %w", i, err)
				}
			}
			if e.Section != "" {
				return fmt.Errorf("entry %d: section %q on a %s entry", i, e.Section, e.Kind)
			}
		case string(server.KindExperiment):
			if e.Section == "" {
				return fmt.Errorf("entry %d: experiment entry requires a section (one of %v)", i, server.Sections())
			}
		default:
			return fmt.Errorf("entry %d: unknown kind %q (want one of %v)", i, e.Kind, server.Kinds())
		}
	}
	return nil
}

// SampleSpecs deterministically draws one normalizable job spec per
// schedule arrival: a weighted entry choice, then uniform fills for
// any unpinned workload/config field. Equal (mix, n, seed) inputs
// return identical spec sequences.
func (m Mix) SampleSpecs(n int, seed int64) ([]server.Spec, error) {
	specs, _, err := m.SampleArrivals(n, seed, 0)
	return specs, err
}

// SampleArrivals draws one spec plus its tenant per schedule arrival.
// An entry's pinned Tenant wins; otherwise, when nTenants > 0, the
// arrival draws a synthetic tenant "t1".."t<nTenants>" from a Zipf-ish
// distribution (tenant k has weight 1/k, so t1 dominates like a heavy
// interactive tenant while the tail trickles) — and when nTenants is
// 0, the tenant is "" and the daemon attributes the job to its default
// tenant. Equal (mix, n, seed, nTenants) inputs return identical
// sequences, and the spec stream is unchanged by the tenant draw (the
// tenant RNG is a separate stream), so adding -tenants to an existing
// seeded run re-labels the same jobs.
func (m Mix) SampleArrivals(n int, seed int64, nTenants int) ([]server.Spec, []string, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	// A distinct stream from the schedule's: the same seed must not
	// correlate arrival gaps with spec choices.
	rng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	// And a third stream for tenants, so tenant sampling never perturbs
	// the spec sequence.
	trng := rand.New(rand.NewSource(seed ^ 0x7E57A117))
	var tenantWeights []float64
	tenantTotal := 0.0
	for k := 1; k <= nTenants; k++ {
		w := 1.0 / float64(k)
		tenantWeights = append(tenantWeights, w)
		tenantTotal += w
	}
	weights := make([]float64, len(m.Entries))
	total := 0.0
	for i, e := range m.Entries {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}
	workloads := trace.Names()
	configs := config.Registry()
	specs := make([]server.Spec, n)
	tenants := make([]string, n)
	for i := 0; i < n; i++ {
		r := rng.Float64() * total
		k := 0
		for ; k < len(weights)-1 && r >= weights[k]; k++ {
			r -= weights[k]
		}
		e := m.Entries[k]
		spec := server.Spec{
			Kind:     server.Kind(e.Kind),
			Workload: e.Workload,
			Config:   e.Config,
			Section:  e.Section,
			Depths:   e.Depths,
		}
		if spec.Kind == "" {
			spec.Kind = server.KindTiming
		}
		if spec.Kind != server.KindExperiment {
			if spec.Workload == "" {
				spec.Workload = workloads[rng.Intn(len(workloads))]
			}
			if spec.Config == "" {
				spec.Config = configs[rng.Intn(len(configs))].Name
			}
		}
		specs[i] = spec
		tenants[i] = e.Tenant
		if tenants[i] == "" && nTenants > 0 {
			tr := trng.Float64() * tenantTotal
			tk := 0
			for ; tk < len(tenantWeights)-1 && tr >= tenantWeights[tk]; tk++ {
				tr -= tenantWeights[tk]
			}
			tenants[i] = fmt.Sprintf("t%d", tk+1)
		}
	}
	return specs, tenants, nil
}
