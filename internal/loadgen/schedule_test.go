package loadgen

import (
	"bytes"
	"testing"
	"time"

	"thermalherd/internal/config"
	"thermalherd/internal/server"
	"thermalherd/internal/trace"
)

func TestSynthesizeConstant(t *testing.T) {
	sched, err := Synthesize(ScheduleConfig{Mode: ModeConstant, RPS: 100, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 100 {
		t.Fatalf("constant 100rps x 1s = %d arrivals, want 100", len(sched))
	}
	for i := 1; i < len(sched); i++ {
		if sched[i] <= sched[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v", i, sched[i-1], sched[i])
		}
	}
	if sched[0] != 0 || sched[len(sched)-1] >= time.Second {
		t.Fatalf("bounds: first %v last %v", sched[0], sched[len(sched)-1])
	}
}

func TestSynthesizeRampSweepsSlots(t *testing.T) {
	// 10→30 rps by 10 over 1s slots: 10 + 20 + 30 = 60 arrivals, 3s.
	c := ScheduleConfig{Mode: ModeRamp, StartRPS: 10, TargetRPS: 30, StepRPS: 10, Slot: time.Second}
	sched, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 60 {
		t.Fatalf("ramp arrivals = %d, want 60", len(sched))
	}
	count := func(lo, hi time.Duration) int {
		n := 0
		for _, off := range sched {
			if off >= lo && off < hi {
				n++
			}
		}
		return n
	}
	for slot, want := range []int{10, 20, 30} {
		lo := time.Duration(slot) * time.Second
		if got := count(lo, lo+time.Second); got != want {
			t.Errorf("slot %d arrivals = %d, want %d", slot, got, want)
		}
	}
	// A duration cap truncates the sweep.
	c.Duration = 1500 * time.Millisecond
	capped, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) >= len(sched) {
		t.Fatalf("capped ramp has %d arrivals, want fewer than %d", len(capped), len(sched))
	}
	for _, off := range capped {
		if off >= c.Duration {
			t.Fatalf("capped ramp arrival %v beyond duration %v", off, c.Duration)
		}
	}
}

func TestSynthesizeBurstAddsArrivals(t *testing.T) {
	base := ScheduleConfig{Mode: ModeConstant, RPS: 20, Duration: 2 * time.Second}
	burst := ScheduleConfig{Mode: ModeBurst, RPS: 20, Duration: 2 * time.Second,
		BurstRPS: 200, BurstEvery: time.Second, BurstLen: 200 * time.Millisecond}
	b, err := Synthesize(base)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Synthesize(burst)
	if err != nil {
		t.Fatal(err)
	}
	// One burst window at t=1s adds ~40 arrivals on the 40 baseline.
	if len(s) <= len(b) {
		t.Fatalf("burst schedule (%d) not larger than baseline (%d)", len(s), len(b))
	}
	inWindow := 0
	for _, off := range s {
		if off >= time.Second && off < 1200*time.Millisecond {
			inWindow++
		}
	}
	if inWindow < 40 {
		t.Fatalf("burst window holds %d arrivals, want >= 40", inWindow)
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("burst schedule unsorted at %d", i)
		}
	}
}

func TestSynthesizePoissonDeterministicPerSeed(t *testing.T) {
	c := ScheduleConfig{Mode: ModePoisson, RPS: 200, Duration: time.Second, Seed: 42}
	a, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(FormatSchedule(a), FormatSchedule(b)) {
		t.Fatal("same seed produced different poisson schedules")
	}
	c.Seed = 43
	d, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(FormatSchedule(a), FormatSchedule(d)) {
		t.Fatal("different seeds produced identical poisson schedules")
	}
	// The mean rate should be in the right ballpark (200 ± 50%).
	if n := len(a); n < 100 || n > 300 {
		t.Fatalf("poisson 200rps x 1s = %d arrivals, want ~200", n)
	}
}

// TestScheduleByteIdentical is the acceptance determinism check at the
// library layer: equal configs render byte-identical schedule dumps
// with matching digests, for every mode.
func TestScheduleByteIdentical(t *testing.T) {
	configs := []ScheduleConfig{
		{Mode: ModeConstant, RPS: 50, Duration: time.Second, Seed: 42},
		{Mode: ModeRamp, StartRPS: 5, TargetRPS: 25, StepRPS: 5, Slot: 500 * time.Millisecond, Seed: 42},
		{Mode: ModeBurst, RPS: 30, Duration: 2 * time.Second, BurstRPS: 300,
			BurstEvery: 700 * time.Millisecond, BurstLen: 100 * time.Millisecond, Seed: 42},
		{Mode: ModePoisson, RPS: 80, Duration: time.Second, Seed: 42},
	}
	for _, c := range configs {
		a, err := Synthesize(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Mode, err)
		}
		b, err := Synthesize(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Mode, err)
		}
		if !bytes.Equal(FormatSchedule(a), FormatSchedule(b)) {
			t.Errorf("%s: schedules not byte-identical", c.Mode)
		}
		if ScheduleSHA256(a) != ScheduleSHA256(b) {
			t.Errorf("%s: schedule digests differ", c.Mode)
		}
	}
}

func TestSynthesizeRejectsBadConfigs(t *testing.T) {
	bad := []ScheduleConfig{
		{},
		{Mode: "warp", RPS: 10, Duration: time.Second},
		{Mode: ModeConstant, RPS: 0, Duration: time.Second},
		{Mode: ModeConstant, RPS: 10},
		{Mode: ModeRamp, StartRPS: 10, TargetRPS: 5, StepRPS: 5, Slot: time.Second},
		{Mode: ModeRamp, StartRPS: 10, TargetRPS: 20, StepRPS: 0, Slot: time.Second},
		{Mode: ModeRamp, StartRPS: 10, TargetRPS: 20, StepRPS: 5},
		{Mode: ModeBurst, RPS: 10, Duration: time.Second, BurstRPS: 0, BurstEvery: time.Second, BurstLen: time.Millisecond},
		{Mode: ModeBurst, RPS: 10, Duration: time.Second, BurstRPS: 100, BurstEvery: 100 * time.Millisecond, BurstLen: time.Second},
		{Mode: ModePoisson, RPS: -1, Duration: time.Second},
	}
	for i, c := range bad {
		if _, err := Synthesize(c); err == nil {
			t.Errorf("config %d (%+v) accepted, want error", i, c)
		}
	}
}

func TestMixSampleDeterministicAndValid(t *testing.T) {
	m := DefaultMix()
	a, err := m.SampleSpecs(200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SampleSpecs(200, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs across same-seed samples: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := m.SampleSpecs(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical spec sequences")
	}
	// Every sampled spec names a real workload and configuration.
	seen := map[string]bool{}
	for _, s := range a {
		if _, err := trace.ProfileByName(s.Workload); err != nil {
			t.Fatalf("sampled unknown workload: %+v", s)
		}
		if _, err := config.ByName(s.Config); err != nil {
			t.Fatalf("sampled unknown config: %+v", s)
		}
		seen[s.Workload] = true
	}
	if len(seen) < 20 {
		t.Fatalf("uniform sampling over 106 workloads hit only %d distinct ones in 200 draws", len(seen))
	}
}

func TestMixWeightsBias(t *testing.T) {
	m := Mix{Entries: []MixEntry{
		{Kind: "timing", Workload: "mcf", Config: "3D", Weight: 9},
		{Kind: "experiment", Section: "table2", Weight: 1},
	}}
	specs, err := m.SampleSpecs(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	timing := 0
	for _, s := range specs {
		if s.Kind == server.KindTiming {
			timing++
		}
	}
	// 9:1 weighting: expect ~900 timing draws.
	if timing < 800 || timing > 975 {
		t.Fatalf("9:1 mix drew %d/1000 timing specs, want ~900", timing)
	}
}

func TestMixValidateRejects(t *testing.T) {
	bad := []Mix{
		{},
		{Entries: []MixEntry{{Kind: "quantum"}}},
		{Entries: []MixEntry{{Workload: "doom2016"}}},
		{Entries: []MixEntry{{Config: "5D"}}},
		{Entries: []MixEntry{{Kind: "experiment"}}},
		{Entries: []MixEntry{{Section: "fig8"}}},
		{Entries: []MixEntry{{Weight: -1}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %d accepted, want error", i)
		}
	}
}

func TestOfferedRPS(t *testing.T) {
	sched, err := Synthesize(ScheduleConfig{Mode: ModeConstant, RPS: 100, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := OfferedRPS(sched); got < 90 || got > 115 {
		t.Fatalf("OfferedRPS = %g, want ~100", got)
	}
	if got := OfferedRPS(nil); got != 0 {
		t.Fatalf("OfferedRPS(nil) = %g, want 0", got)
	}
}

// TestExampleMixFileValid keeps the shipped example mix loadable: docs
// and the thermload -mix flag both point users at it.
func TestExampleMixFileValid(t *testing.T) {
	m, err := LoadMixFile("../../examples/mixes/default.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) < 2 {
		t.Fatalf("example mix has %d entries, want a multi-entry demonstration", len(m.Entries))
	}
	if _, err := m.SampleSpecs(50, 1); err != nil {
		t.Fatalf("sampling from example mix: %v", err)
	}
}
