// Package loadgen is an open-loop load generator and SLO benchmark
// harness for the thermherdd daemon. It synthesizes deterministic
// request-arrival schedules (constant, ramp, burst, and Poisson modes,
// mirroring the invitro trace synthesizer), samples job specs from the
// workload suite and machine-configuration registry with a weighted
// mix, fires them at a daemon with bounded in-flight concurrency, and
// reduces the observed latencies into a machine-readable SLO report.
//
// Open-loop means the arrival schedule never slows down to wait for
// responses: when the in-flight bound is reached, further arrivals are
// dropped and counted rather than queued, so an overloaded server
// shows up as latency and drops instead of silently shrinking the
// offered load (the coordinated-omission trap).
//
// The package is declared deterministic to thermlint: a given seed must
// produce a byte-identical schedule and spec mix, so wall-clock reads
// and unseeded randomness are lint errors outside audited exceptions.
//
//thermlint:deterministic
//thermlint:goroutines
package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"
)

// Mode selects the arrival-schedule shape.
type Mode string

const (
	// ModeConstant fires at a fixed rate for the whole duration.
	ModeConstant Mode = "constant"
	// ModeRamp sweeps the rate in steps from StartRPS to TargetRPS,
	// holding each step for Slot (the invitro "RPS sweep").
	ModeRamp Mode = "ramp"
	// ModeBurst overlays periodic high-rate bursts on a constant
	// baseline.
	ModeBurst Mode = "burst"
	// ModePoisson draws exponentially distributed inter-arrival times
	// with mean rate RPS from the seeded generator.
	ModePoisson Mode = "poisson"
)

// Modes lists every schedule mode.
func Modes() []Mode { return []Mode{ModeConstant, ModeRamp, ModeBurst, ModePoisson} }

// ScheduleConfig parameterizes Synthesize. Fields apply per mode; see
// the Mode constants.
type ScheduleConfig struct {
	Mode Mode `json:"mode"`
	// Duration bounds the schedule for constant, burst, and poisson
	// modes. Ramp mode derives its duration from the step sweep; a
	// nonzero Duration then acts as a cap.
	Duration time.Duration `json:"duration"`
	// RPS is the constant/poisson rate and the burst-mode baseline.
	RPS float64 `json:"rps,omitempty"`
	// StartRPS..TargetRPS stepped by StepRPS, one Slot per step (ramp).
	StartRPS  float64       `json:"start_rps,omitempty"`
	TargetRPS float64       `json:"target_rps,omitempty"`
	StepRPS   float64       `json:"step_rps,omitempty"`
	Slot      time.Duration `json:"slot,omitempty"`
	// BurstRPS arrivals for BurstLen every BurstEvery (burst).
	BurstRPS   float64       `json:"burst_rps,omitempty"`
	BurstEvery time.Duration `json:"burst_every,omitempty"`
	BurstLen   time.Duration `json:"burst_len,omitempty"`
	// Seed drives every random choice (poisson inter-arrivals and mix
	// sampling); equal seeds reproduce byte-identical schedules.
	Seed int64 `json:"seed"`
}

// Validate rejects configurations that cannot produce a schedule.
func (c ScheduleConfig) Validate() error {
	switch c.Mode {
	case ModeConstant, ModePoisson:
		if c.RPS <= 0 {
			return fmt.Errorf("loadgen: %s mode requires RPS > 0, got %g", c.Mode, c.RPS)
		}
		if c.Duration <= 0 {
			return fmt.Errorf("loadgen: %s mode requires a positive duration", c.Mode)
		}
	case ModeRamp:
		if c.StartRPS <= 0 || c.TargetRPS < c.StartRPS || c.StepRPS <= 0 {
			return fmt.Errorf("loadgen: ramp requires 0 < start(%g) <= target(%g) and step(%g) > 0",
				c.StartRPS, c.TargetRPS, c.StepRPS)
		}
		if c.Slot <= 0 {
			return fmt.Errorf("loadgen: ramp requires a positive slot duration")
		}
	case ModeBurst:
		if c.RPS <= 0 || c.BurstRPS <= 0 {
			return fmt.Errorf("loadgen: burst requires baseline RPS(%g) > 0 and burst RPS(%g) > 0", c.RPS, c.BurstRPS)
		}
		if c.Duration <= 0 || c.BurstEvery <= 0 || c.BurstLen <= 0 {
			return fmt.Errorf("loadgen: burst requires positive duration, burst-every, and burst-len")
		}
		if c.BurstLen > c.BurstEvery {
			return fmt.Errorf("loadgen: burst-len %s exceeds burst-every %s", c.BurstLen, c.BurstEvery)
		}
	case "":
		return fmt.Errorf("loadgen: missing schedule mode (want one of %v)", Modes())
	default:
		return fmt.Errorf("loadgen: unknown schedule mode %q (want one of %v)", c.Mode, Modes())
	}
	return nil
}

// Synthesize materializes the arrival schedule: a sorted slice of
// offsets from the run's start. It is a pure function of the config —
// two calls with equal configs (including Seed) return identical
// schedules.
func Synthesize(c ScheduleConfig) ([]time.Duration, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var sched []time.Duration
	switch c.Mode {
	case ModeConstant:
		sched = constantArrivals(0, c.Duration, c.RPS)
	case ModeRamp:
		var off time.Duration
		for rps := c.StartRPS; rps <= c.TargetRPS+1e-9; rps += c.StepRPS {
			sched = append(sched, constantArrivals(off, c.Slot, rps)...)
			off += c.Slot
			if c.Duration > 0 && off >= c.Duration {
				break
			}
		}
		if c.Duration > 0 {
			sched = truncate(sched, c.Duration)
		}
	case ModeBurst:
		sched = constantArrivals(0, c.Duration, c.RPS)
		for start := c.BurstEvery; start < c.Duration; start += c.BurstEvery {
			end := start + c.BurstLen
			if end > c.Duration {
				end = c.Duration
			}
			sched = append(sched, constantArrivals(start, end-start, c.BurstRPS)...)
		}
		sort.Slice(sched, func(i, k int) bool { return sched[i] < sched[k] })
	case ModePoisson:
		rng := rand.New(rand.NewSource(c.Seed))
		mean := float64(time.Second) / c.RPS
		for off := time.Duration(0); ; {
			// Inverse-CDF draw of an exponential inter-arrival gap.
			gap := time.Duration(-mean * math.Log(1-rng.Float64()))
			off += gap
			if off >= c.Duration {
				break
			}
			sched = append(sched, off)
		}
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("loadgen: %s schedule came out empty (duration too short for the rate?)", c.Mode)
	}
	return sched, nil
}

// constantArrivals spaces dur*rps arrivals 1/rps apart over
// [start, start+dur). The count is computed up front rather than by
// accumulating truncated gaps, which would drift an extra arrival in
// at rates that don't divide a second evenly.
func constantArrivals(start, dur time.Duration, rps float64) []time.Duration {
	n := int(dur.Seconds()*rps + 1e-9)
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+time.Duration(float64(i)*float64(time.Second)/rps))
	}
	return out
}

// truncate drops arrivals at or beyond limit (the slice is sorted).
func truncate(sched []time.Duration, limit time.Duration) []time.Duration {
	i := sort.Search(len(sched), func(i int) bool { return sched[i] >= limit })
	return sched[:i]
}

// FormatSchedule renders one arrival offset per line, in integer
// nanoseconds. The rendering is byte-identical across runs with equal
// configs, which is what the reproducibility acceptance check diffs.
func FormatSchedule(sched []time.Duration) []byte {
	var out []byte
	for _, off := range sched {
		out = strconv.AppendInt(out, int64(off), 10)
		out = append(out, '\n')
	}
	return out
}

// ScheduleSHA256 is the hex digest of FormatSchedule, embedded in
// reports so two runs can be compared without keeping the dump.
func ScheduleSHA256(sched []time.Duration) string {
	sum := sha256.Sum256(FormatSchedule(sched))
	return hex.EncodeToString(sum[:])
}

// OfferedRPS is the schedule's average offered rate over its span
// (arrival count divided by the last arrival offset, or 0 for a
// single-arrival schedule).
func OfferedRPS(sched []time.Duration) float64 {
	if len(sched) < 2 {
		return 0
	}
	span := sched[len(sched)-1].Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(sched)) / span
}
