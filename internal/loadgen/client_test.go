package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryDelayFullJitter pins the backoff contract: each delay is a
// uniform draw from [0, backoff<<attempt), equal seeds reproduce equal
// schedules, and the ceiling caps at maxRetryDelay.
func TestRetryDelayFullJitter(t *testing.T) {
	backoff := 100 * time.Millisecond
	a := NewClient("http://x", 5, backoff, 42)
	b := NewClient("http://x", 5, backoff, 42)
	c := NewClient("http://x", 5, backoff, 43)
	var sameSeedEqual, diffSeedDiffer bool = true, false
	for attempt := 0; attempt < 5; attempt++ {
		da := a.retryDelay(attempt, "")
		db := b.retryDelay(attempt, "")
		dc := c.retryDelay(attempt, "")
		ceil := backoff << attempt
		if da < 0 || da >= ceil {
			t.Fatalf("attempt %d: delay %s outside [0, %s)", attempt, da, ceil)
		}
		if da != db {
			sameSeedEqual = false
		}
		if da != dc {
			diffSeedDiffer = true
		}
	}
	if !sameSeedEqual {
		t.Fatal("equal seeds produced different retry schedules")
	}
	if !diffSeedDiffer {
		t.Fatal("different seeds produced identical retry schedules (jitter not seeded?)")
	}
	// Far-out attempts (including shift overflow) stay under the cap.
	for _, attempt := range []int{20, 40, 63} {
		if d := a.retryDelay(attempt, ""); d < 0 || d >= maxRetryDelay {
			t.Fatalf("attempt %d: delay %s outside [0, %s)", attempt, d, maxRetryDelay)
		}
	}
}

// TestRetryDelayHonorsRetryAfter pins the server-hint path: a valid
// Retry-After overrides the jitter verbatim (capped), anything else
// falls back to the jittered draw.
func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	c := NewClient("http://x", 3, 10*time.Millisecond, 1)
	if d := c.retryDelay(0, "2"); d != 2*time.Second {
		t.Fatalf("Retry-After 2 → %s, want 2s", d)
	}
	if d := c.retryDelay(0, " 3 "); d != 3*time.Second {
		t.Fatalf("padded Retry-After → %s, want 3s", d)
	}
	if d := c.retryDelay(0, "9999"); d != maxRetryDelay {
		t.Fatalf("huge Retry-After → %s, want cap %s", d, maxRetryDelay)
	}
	for _, bad := range []string{"", "0", "-1", "soon", "1.5"} {
		if d := c.retryDelay(0, bad); d < 0 || d >= 10*time.Millisecond {
			t.Fatalf("Retry-After %q → %s, want jittered [0, 10ms)", bad, d)
		}
	}
}

// TestPostRetryBacksOffAndRecovers drives postRetry against a handler
// that sheds twice (with a Retry-After hint) before accepting, and
// checks the retry accounting.
func TestPostRetryBacksOffAndRecovers(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			// A sub-second Retry-After is not representable in integer
			// seconds; send none so the client's jitter (bounded by the
			// tiny backoff) keeps the test fast.
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"job-000001"}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 3, time.Millisecond, 7)
	body, code, err := c.postRetry(context.Background(), "/v1/jobs", []byte(`{}`), "", "")
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusAccepted {
		t.Fatalf("final status = %d, want 202", code)
	}
	if len(body) == 0 {
		t.Fatal("empty final body")
	}
	if got := c.RetriesUsed(); got != 2 {
		t.Fatalf("RetriesUsed = %d, want 2", got)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestPostRetryExhaustsBudget: a server that always sheds returns its
// final 429 (not an error) once the attempt budget is spent.
func TestPostRetryExhaustsBudget(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"shedding load"}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 2, time.Millisecond, 7)
	_, code, err := c.postRetry(context.Background(), "/v1/jobs", []byte(`{}`), "", "")
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("final status = %d, want 429", code)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 1 + 2 retries", got)
	}
}
