package loadgen

// The load generator's own metric-name registry: the recorder's
// histograms feed the report the SLO harness asserts against, so their
// names go through named constants the same way the daemon's do (see
// internal/server/metricnames.go and thermlint's metrickeys analyzer).
//
//thermlint:metricnames
const (
	// metricE2ELatency is the submit-to-terminal-state latency histogram.
	metricE2ELatency = "e2e_latency_ms"
	// metricQueueWait is the daemon-reported queue-wait histogram.
	metricQueueWait = "queue_wait_ms"
	// metricTenantLatencyPrefix names the per-tenant end-to-end latency
	// histograms ("tenant_latency_ms_<tenant>"); a name prefix, not a
	// report key.
	metricTenantLatencyPrefix = "tenant_latency_ms_"
)
