package loadgen

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"thermalherd/internal/server"
)

// newDaemon hosts a real server.Server (real executor, load-test
// simulation depths keep each job in the low milliseconds) behind
// httptest for in-process full-loop runs.
func newDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{Workers: 4, QueueDepth: 256, CacheSize: 256})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return ts
}

// testMix pins tiny depths so full-loop tests measure the service
// path, not the simulator.
func testMix() Mix {
	return Mix{Entries: []MixEntry{{
		Kind:   "timing",
		Config: "TH",
		Depths: server.Depths{FastForward: 2000, Warmup: 500, Measure: 1000},
	}}}
}

func metricsCounter(t *testing.T, doc map[string]any, section, name string) float64 {
	t.Helper()
	sec, ok := doc[section].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing section %q", section)
	}
	v, ok := sec[name].(float64)
	if !ok {
		t.Fatalf("metrics %s missing %q", section, name)
	}
	return v
}

// TestFullLoopConstant drives a fresh daemon with a constant-rate
// schedule and reconciles the client-side report against the server's
// /metrics document.
func TestFullLoopConstant(t *testing.T) {
	ts := newDaemon(t)
	sched, err := Synthesize(ScheduleConfig{Mode: ModeConstant, RPS: 60, Duration: 500 * time.Millisecond, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := testMix().SampleSpecs(len(sched), 42)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ts.URL, 2, 20*time.Millisecond, 1)
	rep, err := Run(context.Background(), RunConfig{
		Client:       client,
		Schedule:     sched,
		Specs:        specs,
		MaxInFlight:  128,
		Timeout:      20 * time.Second,
		PollInterval: 2 * time.Millisecond,
		SLO:          SLO{P95: 15 * time.Second, P99: 20 * time.Second, MaxErrorRate: 0},
		Mode:         ModeConstant,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Internal consistency: every arrival is accounted for exactly once.
	a := rep.Achieved
	if a.Submitted+a.Drops+a.Errors+a.Timeouts != rep.Offered.Arrivals {
		t.Fatalf("submitted %d + drops %d + errors %d + timeouts %d != arrivals %d",
			a.Submitted, a.Drops, a.Errors, a.Timeouts, rep.Offered.Arrivals)
	}
	if a.Done+a.Failed+a.Canceled != a.Submitted {
		t.Fatalf("done %d + failed %d + canceled %d != submitted %d", a.Done, a.Failed, a.Canceled, a.Submitted)
	}
	if a.Errors != 0 || a.Timeouts != 0 || a.Failed != 0 {
		t.Fatalf("clean run saw errors=%d timeouts=%d failed=%d", a.Errors, a.Timeouts, a.Failed)
	}
	if a.Drops != 0 {
		t.Fatalf("in-flight bound 128 over %d arrivals dropped %d", rep.Offered.Arrivals, a.Drops)
	}
	if rep.Latency.Count == 0 || rep.Latency.P95Ms < rep.Latency.P50Ms || rep.Latency.P99Ms < rep.Latency.P95Ms {
		t.Fatalf("implausible latency stats: %+v", rep.Latency)
	}
	if !rep.SLO.Pass {
		t.Fatalf("generous SLO failed: %v", rep.SLO.Violations)
	}

	// Reconcile against the server's own accounting.
	doc, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := metricsCounter(t, doc, "jobs", "submitted"); got != float64(a.Submitted) {
		t.Fatalf("server submitted = %v, report %d", got, a.Submitted)
	}
	hits := metricsCounter(t, doc, "cache", "hits")
	completed := metricsCounter(t, doc, "jobs", "completed")
	if hits != float64(a.CacheHits) {
		t.Fatalf("server cache hits = %v, report %d", hits, a.CacheHits)
	}
	if hits+completed != float64(a.Done) {
		t.Fatalf("server completed %v + cache hits %v != report done %d", completed, hits, a.Done)
	}
}

// TestFullLoopBurstBatched exercises burst mode with batch submission:
// N arrivals must cost at most ceil(N/batch) submit requests (exactly
// that many when nothing is dropped or retried), and the report must
// still reconcile with /metrics.
func TestFullLoopBurstBatched(t *testing.T) {
	ts := newDaemon(t)
	const batchSize = 8
	sched, err := Synthesize(ScheduleConfig{
		Mode: ModeBurst, RPS: 40, Duration: 600 * time.Millisecond,
		BurstRPS: 300, BurstEvery: 250 * time.Millisecond, BurstLen: 100 * time.Millisecond,
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := testMix().SampleSpecs(len(sched), 42)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ts.URL, 0, 20*time.Millisecond, 1)
	rep, err := Run(context.Background(), RunConfig{
		Client:       client,
		Schedule:     sched,
		Specs:        specs,
		MaxInFlight:  256,
		Timeout:      20 * time.Second,
		PollInterval: 2 * time.Millisecond,
		BatchSize:    batchSize,
		SLO:          SLO{MaxErrorRate: 0},
		Mode:         ModeBurst,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Achieved
	if a.Errors != 0 || a.Timeouts != 0 || a.Drops != 0 || a.Failed != 0 {
		t.Fatalf("clean batched run saw errors=%d timeouts=%d drops=%d failed=%d",
			a.Errors, a.Timeouts, a.Drops, a.Failed)
	}
	n := rep.Offered.Arrivals
	maxReqs := int64((n + batchSize - 1) / batchSize)
	if a.SubmitHTTPRequests > maxReqs {
		t.Fatalf("batched submission used %d HTTP requests for %d arrivals, want <= ceil(%d/%d) = %d",
			a.SubmitHTTPRequests, n, n, batchSize, maxReqs)
	}
	if a.SubmitHTTPRequests != maxReqs {
		t.Fatalf("no-drop batched run used %d submit requests, want exactly %d", a.SubmitHTTPRequests, maxReqs)
	}
	if a.Done != n {
		t.Fatalf("done = %d, want all %d arrivals", a.Done, n)
	}
	if !rep.SLO.Pass {
		t.Fatalf("SLO failed: %v", rep.SLO.Violations)
	}

	doc, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := metricsCounter(t, doc, "jobs", "submitted"); got != float64(a.Submitted) {
		t.Fatalf("server submitted = %v, report %d", got, a.Submitted)
	}
	if got := metricsCounter(t, doc, "http", "batch_requests"); got != float64(maxReqs) {
		t.Fatalf("server batch_requests = %v, want %d", got, maxReqs)
	}
	hits := metricsCounter(t, doc, "cache", "hits")
	completed := metricsCounter(t, doc, "jobs", "completed")
	if hits+completed != float64(a.Done) {
		t.Fatalf("server completed %v + hits %v != report done %d", completed, hits, a.Done)
	}
}

// TestRunDropsWhenSaturated pins the open-loop contract: with a
// 1-deep in-flight bound and a server that answers slowly relative to
// the arrival gaps, later arrivals are shed, not queued.
func TestRunDropsWhenSaturated(t *testing.T) {
	ts := newDaemon(t)
	sched := make([]time.Duration, 20)
	for i := range sched {
		sched[i] = time.Duration(i) * time.Millisecond
	}
	// Deeper simulations (~tens of ms) so one job far outlives the
	// 1 ms arrival gaps.
	mix := Mix{Entries: []MixEntry{{
		Kind: "timing", Config: "TH",
		Depths: server.Depths{FastForward: 200_000, Warmup: 50_000, Measure: 100_000},
	}}}
	specs, err := mix.SampleSpecs(len(sched), 1)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ts.URL, 0, 10*time.Millisecond, 1)
	rep, err := Run(context.Background(), RunConfig{
		Client:       client,
		Schedule:     sched,
		Specs:        specs,
		MaxInFlight:  1,
		Timeout:      20 * time.Second,
		PollInterval: time.Millisecond,
		SLO:          SLO{MaxErrorRate: 1},
		Mode:         ModeConstant,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Achieved.Drops == 0 {
		t.Fatalf("saturated open-loop run dropped nothing: %+v", rep.Achieved)
	}
	if rep.Achieved.Submitted+rep.Achieved.Drops != len(sched) {
		t.Fatalf("submitted %d + drops %d != %d arrivals",
			rep.Achieved.Submitted, rep.Achieved.Drops, len(sched))
	}
}

func TestRunConfigValidation(t *testing.T) {
	client := NewClient("http://127.0.0.1:1", 0, time.Millisecond, 1)
	if _, err := Run(context.Background(), RunConfig{Schedule: []time.Duration{0}, Specs: []server.Spec{{}}}); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := Run(context.Background(), RunConfig{Client: client}); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := Run(context.Background(), RunConfig{
		Client: client, Schedule: []time.Duration{0, 1}, Specs: []server.Spec{{}},
	}); err == nil {
		t.Error("mismatched schedule/specs accepted")
	}
}

// TestBatchRetryAcrossRestartDedupes is the idempotency acceptance
// test: the same keyed batch, replayed against a restarted journaling
// daemon (as a client would after losing its connection mid-run),
// returns the original job ids and executes nothing twice.
func TestBatchRetryAcrossRestartDedupes(t *testing.T) {
	const n = 6
	dir := t.TempDir()
	cfg := server.Config{Workers: 4, QueueDepth: 64, CacheSize: 64,
		JournalDir: dir, FsyncPolicy: "always"}

	specs := make([]server.Spec, n)
	keys := make([]string, n)
	for i := range specs {
		specs[i] = server.Spec{Kind: "timing", Config: "TH", Workload: "bitcount",
			Depths: server.Depths{FastForward: 2000 + uint64(i), Warmup: 500, Measure: 1000}}
		keys[i] = fmt.Sprintf("lg-7-%d", i)
	}

	s1, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1)
	c1 := NewClient(ts1.URL, 2, 10*time.Millisecond, 1)
	items, err := c1.SubmitBatch(context.Background(), specs, keys)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	ids := make([]string, n)
	for i, it := range items {
		if it.Status == nil {
			t.Fatalf("batch item %d rejected: %s", i, it.Error)
		}
		ids[i] = it.Status.ID
		deadline := time.Now().Add(20 * time.Second)
		for {
			st, err := c1.JobStatus(context.Background(), ids[i])
			if err != nil {
				t.Fatalf("JobStatus: %v", err)
			}
			if st.State == server.StateDone {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", ids[i], st.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.Drain(dctx)
	dcancel()
	ts1.Close()

	// Restart on the same journal; the retried batch must dedupe.
	s2, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New (restart): %v", err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Drain(ctx)
	})
	c2 := NewClient(ts2.URL, 2, 10*time.Millisecond, 1)
	items2, err := c2.SubmitBatch(context.Background(), specs, keys)
	if err != nil {
		t.Fatalf("SubmitBatch (retry): %v", err)
	}
	for i, it := range items2 {
		if it.Status == nil {
			t.Fatalf("retried item %d rejected: %s", i, it.Error)
		}
		if it.Status.ID != ids[i] {
			t.Fatalf("retried item %d got job %s, want original %s", i, it.Status.ID, ids[i])
		}
	}
	doc, err := c2.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := metricsCounter(t, doc, "jobs", "deduped"); got != n {
		t.Fatalf("jobs.deduped = %v, want %d", got, n)
	}
	if got := metricsCounter(t, doc, "jobs", "completed"); got != n {
		t.Fatalf("jobs.completed = %v, want %d (replayed, not re-executed)", got, n)
	}
}
