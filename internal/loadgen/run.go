package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"thermalherd/internal/clock"
	"thermalherd/internal/server"
	"thermalherd/internal/stats"
)

// RunConfig parameterizes one open-loop run against a daemon.
type RunConfig struct {
	// Client targets the daemon (required).
	Client *Client
	// Schedule holds the arrival offsets and Specs one pre-sampled job
	// per arrival; they must be the same length.
	Schedule []time.Duration
	Specs    []server.Spec
	// Tenants optionally attributes each arrival to a tenant (parallel
	// to Specs; empty strings fall to the daemon's default tenant). Nil
	// runs everything untenanted.
	Tenants []string
	// MaxInFlight bounds concurrently tracked requests; an arrival
	// finding no free slot is dropped and counted. 0 means 64.
	MaxInFlight int
	// Timeout is each request's end-to-end budget, submission through
	// terminal state, measured from its arrival. 0 means 30s.
	Timeout time.Duration
	// PollInterval spaces status polls for in-flight jobs. 0 means 10ms.
	PollInterval time.Duration
	// BatchSize > 1 groups consecutive arrivals into POST /v1/jobs:batch
	// submissions: a batch is flushed when full or when the schedule
	// ends, so N arrivals cost at most ceil(N/BatchSize) submit
	// requests (plus retries). 0 or 1 submits singly.
	BatchSize int
	// SLO is the pass/fail contract evaluated into the report.
	SLO SLO
	// Mode and Seed annotate the report (the schedule is already
	// materialized; these record where it came from). Seed also derives
	// each arrival's Idempotency-Key ("lg-<seed>-<index>"), so a rerun
	// of the same schedule against a journaling daemon dedupes instead
	// of double-executing.
	Mode Mode
	Seed int64
	// StartIndex skips arrivals before it and re-anchors the remaining
	// offsets to fire immediately; thermload -resume continues a
	// partially completed run with it. Skipped arrivals are not counted
	// as drops.
	StartIndex int
	// OnAcked, when set, is called with an arrival's schedule index
	// after the daemon acknowledges its submission. It may be called
	// concurrently and out of order; the caller is responsible for any
	// ordering (thermload advances its resume frontier only over a
	// contiguous prefix). Arrivals whose submission errors are never
	// reported through either callback — they remain unsettled.
	OnAcked func(index int)
	// OnShed, when set, is called with the schedule index of an arrival
	// dropped by the open-loop in-flight bound. A shed is a deliberate,
	// final disposition (the run counts it as a drop and never sends
	// it), so thermload treats it like an ack when advancing its resume
	// frontier rather than replaying it.
	OnShed func(index int)
	// OnSubmitted, when set, is called with the daemon-assigned job id
	// of every acknowledged submission. thermload's failover
	// reconciliation collects these and re-polls each to a terminal
	// state after the run — the acked-job-loss audit a replication A/B
	// is judged on. Like OnAcked it may be called concurrently and out
	// of order.
	OnSubmitted func(index int, id string)
	// Clock supplies the run's time source; nil means the wall clock.
	// Tests inject a clock.Fake to drive the schedule synchronously.
	Clock clock.Clock
}

// arrival is one scheduled request: its pre-sampled spec, its schedule
// index (which derives its idempotency key), and the time it was
// fired, which anchors its latency and timeout.
type arrival struct {
	spec   server.Spec
	tenant string
	idx    int
	at     time.Time
}

// idemKey derives the deterministic Idempotency-Key for schedule index
// idx of a run seeded with seed.
func idemKey(seed int64, idx int) string {
	return fmt.Sprintf("lg-%d-%d", seed, idx)
}

// Run executes the schedule open-loop: arrivals fire at their offsets
// regardless of response times, excess arrivals beyond MaxInFlight are
// dropped, and every submitted job is polled to a terminal state (or
// its timeout). It blocks until all in-flight work settles and returns
// the aggregated report. A canceled ctx stops the schedule early;
// already-fired requests still settle.
func Run(ctx context.Context, cfg RunConfig) (*Report, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("loadgen: RunConfig.Client is required")
	}
	if len(cfg.Schedule) == 0 || len(cfg.Schedule) != len(cfg.Specs) {
		return nil, fmt.Errorf("loadgen: schedule (%d) and specs (%d) must be equal-length and non-empty",
			len(cfg.Schedule), len(cfg.Specs))
	}
	if cfg.Tenants != nil && len(cfg.Tenants) != len(cfg.Specs) {
		return nil, fmt.Errorf("loadgen: tenants (%d) and specs (%d) must be equal-length",
			len(cfg.Tenants), len(cfg.Specs))
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}

	rec := newRecorder(cfg.Clock)
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	var pending []arrival
	flush := func() {
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = nil
		wg.Add(1)
		go func() {
			defer wg.Done()
			fireBatch(ctx, cfg, rec, sem, batch)
		}()
	}

	if cfg.StartIndex < 0 || cfg.StartIndex >= len(cfg.Schedule) {
		return nil, fmt.Errorf("loadgen: StartIndex %d out of range for %d arrivals", cfg.StartIndex, len(cfg.Schedule))
	}
	// Resume re-anchors the remaining offsets so the first unfinished
	// arrival fires immediately instead of waiting out the original
	// schedule position.
	base := cfg.Schedule[cfg.StartIndex]

	start := cfg.Clock.Now()
schedule:
	for i := cfg.StartIndex; i < len(cfg.Schedule); i++ {
		if wait := start.Add(cfg.Schedule[i] - base).Sub(cfg.Clock.Now()); wait > 0 {
			select {
			case <-ctx.Done():
				rec.dropN(len(cfg.Schedule) - i)
				break schedule
			case <-cfg.Clock.After(wait):
			}
		}
		select {
		case sem <- struct{}{}:
			a := arrival{spec: cfg.Specs[i], idx: i, at: cfg.Clock.Now()}
			if cfg.Tenants != nil {
				a.tenant = cfg.Tenants[i]
			}
			if cfg.BatchSize == 1 {
				wg.Add(1)
				go func() {
					defer wg.Done()
					fireOne(ctx, cfg, rec, sem, a)
				}()
			} else {
				pending = append(pending, a)
				if len(pending) >= cfg.BatchSize {
					flush()
				}
			}
		default:
			rec.dropN(1) // open loop: saturation sheds, never queues
			if cfg.OnShed != nil {
				cfg.OnShed(i)
			}
		}
	}
	flush()
	wg.Wait()
	wall := cfg.Clock.Since(start)
	return rec.report(cfg, wall), nil
}

// fireOne submits a's spec and tracks it to a terminal state.
func fireOne(ctx context.Context, cfg RunConfig, rec *recorder, sem chan struct{}, a arrival) {
	defer func() { <-sem }()
	rctx, cancel := context.WithDeadline(ctx, a.at.Add(cfg.Timeout))
	defer cancel()
	st, err := cfg.Client.SubmitT(rctx, a.spec, idemKey(cfg.Seed, a.idx), a.tenant)
	if err != nil {
		rec.submitError(rctx)
		return
	}
	rec.submitted()
	if cfg.OnAcked != nil {
		cfg.OnAcked(a.idx)
	}
	if cfg.OnSubmitted != nil {
		cfg.OnSubmitted(a.idx, st.ID)
	}
	track(rctx, cfg, rec, a, st)
}

// fireBatch submits one POST /v1/jobs:batch for the buffered arrivals
// and tracks each admitted job under its own arrival-anchored
// deadline.
func fireBatch(ctx context.Context, cfg RunConfig, rec *recorder, sem chan struct{}, batch []arrival) {
	// The batch deadline is anchored to the oldest buffered arrival so
	// buffering time cannot extend any item's budget.
	bctx, cancel := context.WithDeadline(ctx, batch[0].at.Add(cfg.Timeout))
	specs := make([]server.Spec, len(batch))
	keys := make([]string, len(batch))
	var tenants []string
	if cfg.Tenants != nil {
		tenants = make([]string, len(batch))
	}
	for i, a := range batch {
		specs[i] = a.spec
		keys[i] = idemKey(cfg.Seed, a.idx)
		if tenants != nil {
			tenants[i] = a.tenant
		}
	}
	items, err := cfg.Client.SubmitBatchT(bctx, specs, keys, tenants)
	cancel()
	if err != nil {
		rec.batchError(bctx, len(batch))
		for range batch {
			//thermlint:blocking -- releasing our own tokens from a buffered semaphore; the matching sends already happened
			<-sem
		}
		return
	}
	var wg sync.WaitGroup
	for i, item := range items {
		a := batch[i]
		if item.Status == nil {
			rec.itemError()
			//thermlint:blocking -- releasing our own token from a buffered semaphore; the matching send already happened
			<-sem
			continue
		}
		rec.submitted()
		if cfg.OnAcked != nil {
			cfg.OnAcked(a.idx)
		}
		if cfg.OnSubmitted != nil {
			cfg.OnSubmitted(a.idx, item.Status.ID)
		}
		wg.Add(1)
		go func(a arrival, st server.Status) {
			defer wg.Done()
			defer func() { <-sem }()
			rctx, cancel := context.WithDeadline(ctx, a.at.Add(cfg.Timeout))
			defer cancel()
			track(rctx, cfg, rec, a, st)
		}(a, *item.Status)
	}
	wg.Wait()
}

// track polls st's job until it settles, recording the outcome.
func track(ctx context.Context, cfg RunConfig, rec *recorder, a arrival, st server.Status) {
	for {
		switch st.State {
		case server.StateDone:
			rec.done(a, st)
			return
		case server.StateFailed:
			rec.failed()
			return
		case server.StateCanceled:
			rec.canceled()
			return
		}
		select {
		case <-ctx.Done():
			rec.timeout()
			return
		case <-cfg.Clock.After(cfg.PollInterval):
		}
		var err error
		st, err = cfg.Client.JobStatus(ctx, st.ID)
		if err != nil {
			if ctx.Err() != nil {
				rec.timeout()
			} else {
				rec.pollError()
			}
			return
		}
	}
}

// recorder aggregates one run's observations. Latencies land in
// millisecond-resolution histograms (0–60s, overflow beyond) so the
// report's quantiles interpolate within 1 ms.
type recorder struct {
	mu            sync.Mutex
	clk           clock.Clock
	latency       *stats.Histogram
	queueWait     *stats.Histogram
	latencySumMs  float64
	latencyMaxMs  float64
	nSubmitted    int
	nDone         int
	nCacheHits    int
	nFailed       int
	nCanceled     int
	nErrors       int
	nTimeouts     int
	nDrops        int
	nQueueWaitObs int

	// Per-tenant completion latencies, keyed by the tenant the arrival
	// was submitted as ("" never appears: untenanted runs record
	// nothing here).
	tenantLat map[string]*stats.Histogram
	tenantN   map[string]int
}

func newRecorder(clk clock.Clock) *recorder {
	return &recorder{
		clk:       clk,
		latency:   stats.NewHistogram(metricE2ELatency, 0, 1, 60_000),
		queueWait: stats.NewHistogram(metricQueueWait, 0, 1, 60_000),
		tenantLat: make(map[string]*stats.Histogram),
		tenantN:   make(map[string]int),
	}
}

func (r *recorder) submitted() {
	r.mu.Lock()
	r.nSubmitted++
	r.mu.Unlock()
}

func (r *recorder) dropN(n int) {
	r.mu.Lock()
	r.nDrops += n
	r.mu.Unlock()
}

// submitError distinguishes a deadline-bounded submit from a hard
// transport/protocol error.
func (r *recorder) submitError(ctx context.Context) {
	r.mu.Lock()
	if ctx.Err() != nil {
		r.nTimeouts++
	} else {
		r.nErrors++
	}
	r.mu.Unlock()
}

func (r *recorder) batchError(ctx context.Context, n int) {
	r.mu.Lock()
	if ctx.Err() != nil {
		r.nTimeouts += n
	} else {
		r.nErrors += n
	}
	r.mu.Unlock()
}

func (r *recorder) itemError() {
	r.mu.Lock()
	r.nErrors++
	r.mu.Unlock()
}

func (r *recorder) pollError() {
	r.mu.Lock()
	r.nErrors++
	r.mu.Unlock()
}

func (r *recorder) failed() {
	r.mu.Lock()
	r.nFailed++
	r.mu.Unlock()
}

func (r *recorder) canceled() {
	r.mu.Lock()
	r.nCanceled++
	r.mu.Unlock()
}

func (r *recorder) timeout() {
	r.mu.Lock()
	r.nTimeouts++
	r.mu.Unlock()
}

// done records a completed job: end-to-end latency from its arrival,
// and server-side queue wait from the status timestamps.
func (r *recorder) done(a arrival, st server.Status) {
	e2eMs := float64(r.clk.Since(a.at)) / float64(time.Millisecond)
	waitMs, waitOK := queueWaitMs(st)
	r.mu.Lock()
	r.nDone++
	if st.FromCache {
		r.nCacheHits++
	}
	r.latency.Observe(int(e2eMs))
	r.latencySumMs += e2eMs
	if e2eMs > r.latencyMaxMs {
		r.latencyMaxMs = e2eMs
	}
	if waitOK {
		r.queueWait.Observe(int(waitMs))
		r.nQueueWaitObs++
	}
	if a.tenant != "" {
		h, ok := r.tenantLat[a.tenant]
		if !ok {
			h = stats.NewHistogram(metricTenantLatencyPrefix+a.tenant, 0, 1, 60_000)
			r.tenantLat[a.tenant] = h
		}
		h.Observe(int(e2eMs))
		r.tenantN[a.tenant]++
	}
	r.mu.Unlock()
}

// queueWaitMs derives the server-side queue wait from a terminal
// status's submitted/started timestamps.
func queueWaitMs(st server.Status) (float64, bool) {
	if st.SubmittedAt == "" || st.StartedAt == "" {
		return 0, false
	}
	sub, err1 := time.Parse(time.RFC3339Nano, st.SubmittedAt)
	sta, err2 := time.Parse(time.RFC3339Nano, st.StartedAt)
	if err1 != nil || err2 != nil || sta.Before(sub) {
		return 0, false
	}
	return float64(sta.Sub(sub)) / float64(time.Millisecond), true
}
