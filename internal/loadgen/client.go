package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"thermalherd/internal/server"
)

// Client is a thin thermherdd HTTP client. Submissions that bounce off
// admission control (HTTP 429 or 503) are retried with exponential
// backoff up to the configured attempt budget; all other errors
// surface immediately.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration

	submitRequests atomic.Int64
	pollRequests   atomic.Int64
	retriesUsed    atomic.Int64
}

// NewClient targets base (e.g. "http://localhost:8077"). retries is
// the number of re-attempts after the first try; backoff is the first
// retry's delay and doubles per attempt.
func NewClient(base string, retries int, backoff time.Duration) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		retries: retries,
		backoff: backoff,
	}
}

// SubmitRequests counts submit HTTP requests issued so far (single and
// batch calls alike, including retries); the batching acceptance check
// asserts on it.
func (c *Client) SubmitRequests() int64 { return c.submitRequests.Load() }

// PollRequests counts status-poll HTTP requests issued so far.
func (c *Client) PollRequests() int64 { return c.pollRequests.Load() }

// RetriesUsed counts submit attempts that were backoff retries.
func (c *Client) RetriesUsed() int64 { return c.retriesUsed.Load() }

// retryable reports whether a submit should back off and try again.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// postRetry POSTs body to path, retrying 429/503 responses. It returns
// the final response body and status code.
func (c *Client) postRetry(ctx context.Context, path string, body []byte) ([]byte, int, error) {
	delay := c.backoff
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		c.submitRequests.Add(1)
		if attempt > 0 {
			c.retriesUsed.Add(1)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, 0, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, resp.StatusCode, err
		}
		if !retryable(resp.StatusCode) || attempt >= c.retries {
			return b, resp.StatusCode, nil
		}
		select {
		case <-ctx.Done():
			return b, resp.StatusCode, ctx.Err()
		case <-time.After(delay):
		}
		delay *= 2
	}
}

// errorOf decodes the server's uniform error document.
func errorOf(body []byte, code int) error {
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return fmt.Errorf("HTTP %d: %s", code, doc.Error)
	}
	return fmt.Errorf("HTTP %d: %s", code, bytes.TrimSpace(body))
}

// Submit sends one job and returns its admitted (or cached) status.
func (c *Client) Submit(ctx context.Context, spec server.Spec) (server.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return server.Status{}, err
	}
	b, code, err := c.postRetry(ctx, "/v1/jobs", body)
	if err != nil {
		return server.Status{}, err
	}
	if code != http.StatusOK && code != http.StatusAccepted {
		return server.Status{}, errorOf(b, code)
	}
	var st server.Status
	if err := json.Unmarshal(b, &st); err != nil {
		return server.Status{}, fmt.Errorf("decode submit response: %w", err)
	}
	return st, nil
}

// SubmitBatch sends specs through POST /v1/jobs:batch and returns the
// per-spec outcomes in submission order.
func (c *Client) SubmitBatch(ctx context.Context, specs []server.Spec) ([]server.BatchItem, error) {
	body, err := json.Marshal(server.BatchRequest{Jobs: specs})
	if err != nil {
		return nil, err
	}
	b, code, err := c.postRetry(ctx, "/v1/jobs:batch", body)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, errorOf(b, code)
	}
	var resp server.BatchResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		return nil, fmt.Errorf("decode batch response: %w", err)
	}
	if len(resp.Jobs) != len(specs) {
		return nil, fmt.Errorf("batch returned %d items for %d specs", len(resp.Jobs), len(specs))
	}
	return resp.Jobs, nil
}

// JobStatus fetches one job's current status.
func (c *Client) JobStatus(ctx context.Context, id string) (server.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return server.Status{}, err
	}
	c.pollRequests.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.Status{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return server.Status{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return server.Status{}, errorOf(b, resp.StatusCode)
	}
	var st server.Status
	if err := json.Unmarshal(b, &st); err != nil {
		return server.Status{}, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// Metrics fetches the daemon's /metrics document.
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode metrics: %w", err)
	}
	return doc, nil
}
