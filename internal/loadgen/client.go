package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thermalherd/internal/clock"

	"thermalherd/internal/server"
)

// maxRetryDelay caps any single backoff sleep, jittered or
// server-suggested.
const maxRetryDelay = 30 * time.Second

// Client is a thin thermherdd HTTP client. Submissions that bounce off
// admission control (HTTP 429 or 503) are retried up to the configured
// attempt budget. Each retry sleeps a full-jitter exponential backoff —
// uniform in [0, backoff<<attempt) — so a fleet of clients rejected
// together does not retry together; a server-sent Retry-After header
// (thermherdd's brownout controller sends one with its 429s) overrides
// the jitter for that attempt. The jitter PRNG is seeded, so equal
// seeds reproduce equal retry schedules.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	clk     clock.Clock

	rngMu sync.Mutex
	rng   *rand.Rand

	submitRequests atomic.Int64
	pollRequests   atomic.Int64
	retriesUsed    atomic.Int64
}

// NewClient targets base (e.g. "http://localhost:8077"). retries is
// the number of re-attempts after the first try; backoff is the upper
// bound of the first retry's jittered delay and doubles per attempt.
// seed fixes the jitter PRNG for reproducible retry schedules.
func NewClient(base string, retries int, backoff time.Duration, seed int64) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		retries: retries,
		backoff: backoff,
		clk:     clock.Real(),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// SubmitRequests counts submit HTTP requests issued so far (single and
// batch calls alike, including retries); the batching acceptance check
// asserts on it.
func (c *Client) SubmitRequests() int64 { return c.submitRequests.Load() }

// PollRequests counts status-poll HTTP requests issued so far.
func (c *Client) PollRequests() int64 { return c.pollRequests.Load() }

// RetriesUsed counts submit attempts that were backoff retries.
func (c *Client) RetriesUsed() int64 { return c.retriesUsed.Load() }

// retryable reports whether a submit should back off and try again.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// retryDelay picks the sleep before retry number attempt (0-based):
// the server's Retry-After suggestion when it sent one, otherwise a
// full-jitter draw from [0, backoff<<attempt), both capped at
// maxRetryDelay.
func (c *Client) retryDelay(attempt int, retryAfter string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		d := time.Duration(secs) * time.Second
		if d > maxRetryDelay {
			d = maxRetryDelay
		}
		return d
	}
	ceil := c.backoff << attempt
	if ceil <= 0 || ceil > maxRetryDelay { // <= 0 catches shift overflow
		ceil = maxRetryDelay
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int63n(int64(ceil)))
}

// postRetry POSTs body to path, retrying 429/503 responses. A
// non-empty idemKey rides along as the Idempotency-Key header on every
// attempt, so a retry (or a rerun after a client restart) of the same
// logical submission cannot double-execute on a journaling daemon. It
// returns the final response body and status code.
func (c *Client) postRetry(ctx context.Context, path string, body []byte, idemKey, tenant string) ([]byte, int, error) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		if tenant != "" {
			req.Header.Set(server.TenantHeader, tenant)
		}
		c.submitRequests.Add(1)
		if attempt > 0 {
			c.retriesUsed.Add(1)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, 0, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, resp.StatusCode, err
		}
		if !retryable(resp.StatusCode) || attempt >= c.retries {
			return b, resp.StatusCode, nil
		}
		select {
		case <-ctx.Done():
			return b, resp.StatusCode, ctx.Err()
		case <-c.clk.After(c.retryDelay(attempt, resp.Header.Get("Retry-After"))):
		}
	}
}

// errorOf decodes the server's uniform error document.
func errorOf(body []byte, code int) error {
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return fmt.Errorf("HTTP %d: %s", code, doc.Error)
	}
	return fmt.Errorf("HTTP %d: %s", code, bytes.TrimSpace(body))
}

// Submit sends one job and returns its admitted (or cached) status.
// A non-empty idemKey dedupes resubmissions on a journaling daemon.
func (c *Client) Submit(ctx context.Context, spec server.Spec, idemKey string) (server.Status, error) {
	return c.SubmitT(ctx, spec, idemKey, "")
}

// SubmitT is Submit with an explicit tenant: non-empty tenant rides
// the X-Tenant-ID header so the daemon attributes and quotas the job.
func (c *Client) SubmitT(ctx context.Context, spec server.Spec, idemKey, tenant string) (server.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return server.Status{}, err
	}
	b, code, err := c.postRetry(ctx, "/v1/jobs", body, idemKey, tenant)
	if err != nil {
		return server.Status{}, err
	}
	if code != http.StatusOK && code != http.StatusAccepted {
		return server.Status{}, errorOf(b, code)
	}
	var st server.Status
	if err := json.Unmarshal(b, &st); err != nil {
		return server.Status{}, fmt.Errorf("decode submit response: %w", err)
	}
	return st, nil
}

// SubmitBatch sends specs through POST /v1/jobs:batch and returns the
// per-spec outcomes in submission order. idemKeys, when non-nil, must
// be one key per spec (empty strings opt individual specs out).
func (c *Client) SubmitBatch(ctx context.Context, specs []server.Spec, idemKeys []string) ([]server.BatchItem, error) {
	return c.SubmitBatchT(ctx, specs, idemKeys, nil)
}

// SubmitBatchT is SubmitBatch with per-spec tenants; tenants, when
// non-nil, must be one tenant per spec (empty strings fall to the
// daemon's default tenant).
func (c *Client) SubmitBatchT(ctx context.Context, specs []server.Spec, idemKeys, tenants []string) ([]server.BatchItem, error) {
	if idemKeys != nil && len(idemKeys) != len(specs) {
		return nil, fmt.Errorf("loadgen: %d idempotency keys for %d specs", len(idemKeys), len(specs))
	}
	if tenants != nil && len(tenants) != len(specs) {
		return nil, fmt.Errorf("loadgen: %d tenants for %d specs", len(tenants), len(specs))
	}
	body, err := json.Marshal(server.BatchRequest{Jobs: specs, IdempotencyKeys: idemKeys, Tenants: tenants})
	if err != nil {
		return nil, err
	}
	b, code, err := c.postRetry(ctx, "/v1/jobs:batch", body, "", "")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, errorOf(b, code)
	}
	var resp server.BatchResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		return nil, fmt.Errorf("decode batch response: %w", err)
	}
	if len(resp.Jobs) != len(specs) {
		return nil, fmt.Errorf("batch returned %d items for %d specs", len(resp.Jobs), len(specs))
	}
	return resp.Jobs, nil
}

// JobStatus fetches one job's current status.
func (c *Client) JobStatus(ctx context.Context, id string) (server.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return server.Status{}, err
	}
	c.pollRequests.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.Status{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return server.Status{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return server.Status{}, errorOf(b, resp.StatusCode)
	}
	var st server.Status
	if err := json.Unmarshal(b, &st); err != nil {
		return server.Status{}, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// Healthz probes the daemon's liveness endpoint, returning its status
// string ("ok" or "draining"); an unreachable or unhealthy daemon is
// an error. Chaos runs use it to assert the process survived.
func (c *Client) Healthz(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return "", errorOf(b, resp.StatusCode)
	}
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", fmt.Errorf("decode healthz: %w", err)
	}
	return doc.Status, nil
}

// CountJobs returns how many known jobs are in the given lifecycle
// state (all jobs when status is empty), via GET /v1/jobs's Total.
func (c *Client) CountJobs(ctx context.Context, status string) (int, error) {
	url := c.base + "/v1/jobs?limit=1"
	if status != "" {
		url += "&status=" + status
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, errorOf(b, resp.StatusCode)
	}
	var list server.ListResponse
	if err := json.Unmarshal(b, &list); err != nil {
		return 0, fmt.Errorf("decode job list: %w", err)
	}
	return list.Total, nil
}

// Metrics fetches the daemon's /metrics document.
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode metrics: %w", err)
	}
	return doc, nil
}
