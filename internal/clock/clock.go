// Package clock is the repo's sanctioned wall-clock seam: code that
// must be testable without sleeping (server job timing, the loadgen
// open-loop runner) reads time through a Clock instead of package time,
// so tests substitute a Fake and advance it synchronously. The package
// is declared deterministic to thermlint; the Real implementation
// carries the audited //thermlint:wallclock exceptions, which keeps
// every other wall-clock read in deterministic packages a lint error.
//
//thermlint:deterministic
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the subset of package time the daemon's timing paths
// use. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// After returns a channel that delivers the current time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real returns the wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time {
	return time.Now() //thermlint:wallclock -- the one sanctioned wall-clock read
}

func (realClock) Since(t time.Time) time.Duration {
	return time.Since(t) //thermlint:wallclock -- the one sanctioned elapsed-time read
}

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced Clock for tests: time moves only through
// Advance, so timing-dependent behavior (queue aging, brownout
// thresholds) is exercised without real sleeps or flaky margins.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewFake returns a Fake reading start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now returns the fake's current reading.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the fake-elapsed time since t.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// After returns a channel that fires when the fake clock has been
// advanced by at least d. A non-positive d fires immediately.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	f.mu.Lock()
	due := f.now.Add(d)
	if d <= 0 {
		//thermlint:locked -- ch was just made with capacity 1; the send cannot block
		ch <- f.now
	} else {
		f.timers = append(f.timers, &fakeTimer{at: due, ch: ch})
	}
	f.mu.Unlock()
	return ch
}

// Advance moves the fake clock forward by d and fires every timer that
// came due, in due order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var due, pending []*fakeTimer
	for _, t := range f.timers {
		if !t.at.After(now) {
			due = append(due, t)
		} else {
			pending = append(pending, t)
		}
	}
	f.timers = pending
	f.mu.Unlock()
	sort.Slice(due, func(i, k int) bool { return due[i].at.Before(due[k].at) })
	for _, t := range due {
		// Buffered with capacity 1 and fired exactly once: never blocks.
		t.ch <- now
	}
}
