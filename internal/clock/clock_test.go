package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	c := Real()
	t0 := c.Now()
	if c.Since(t0) < 0 {
		t.Fatal("Since went backwards")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("Real().After(1ms) never fired")
	}
}

func TestFakeNowOnlyMovesOnAdvance(t *testing.T) {
	start := time.Unix(1_700_000_000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(90 * time.Millisecond)
	if got := f.Since(start); got != 90*time.Millisecond {
		t.Fatalf("Since(start) = %v, want 90ms", got)
	}
}

func TestFakeAfterFiresInDueOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	late := f.After(100 * time.Millisecond)
	early := f.After(10 * time.Millisecond)

	f.Advance(5 * time.Millisecond)
	select {
	case <-early:
		t.Fatal("timer fired before its deadline")
	default:
	}

	f.Advance(200 * time.Millisecond)
	at1 := <-early
	at2 := <-late
	if !at1.Equal(at2) {
		t.Fatalf("both timers should read the advance instant: %v vs %v", at1, at2)
	}
	if want := time.Unix(0, 0).Add(205 * time.Millisecond); !at1.Equal(want) {
		t.Fatalf("fire time = %v, want %v", at1, want)
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestFakeConcurrentAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch := f.After(time.Millisecond)
			f.Advance(2 * time.Millisecond)
			<-ch
		}()
	}
	wg.Wait()
	if got := f.Since(time.Unix(0, 0)); got != 16*time.Millisecond {
		t.Fatalf("total advance = %v, want 16ms", got)
	}
}
