package replication

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"thermalherd/internal/faultinject"
	"thermalherd/internal/journal"
)

// replicaSink is a fake successor: it records every framed event
// appended to its /v1/replica/{origin} endpoint.
type replicaSink struct {
	ts *httptest.Server

	mu     sync.Mutex
	events map[string][]journal.Event
	fail   bool
}

func newReplicaSink(t *testing.T) *replicaSink {
	t.Helper()
	rs := &replicaSink{events: make(map[string][]journal.Event)}
	rs.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		origin := strings.TrimPrefix(r.URL.Path, "/v1/replica/")
		body, _ := io.ReadAll(r.Body)
		events, torn := journal.DecodeFrames(body)
		rs.mu.Lock()
		defer rs.mu.Unlock()
		if rs.fail {
			http.Error(w, "injected", http.StatusServiceUnavailable)
			return
		}
		if torn {
			http.Error(w, "torn frame", http.StatusBadRequest)
			return
		}
		rs.events[origin] = append(rs.events[origin], events...)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(rs.ts.Close)
	return rs
}

func (rs *replicaSink) count(origin string) int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.events[origin])
}

func (rs *replicaSink) setFail(v bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.fail = v
}

func target(rs *replicaSink) func() (string, string) {
	return func() (string, string) { return "succ", rs.ts.URL }
}

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"", "none", "async", "sync"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
		}
	}
	if _, err := ParsePolicy("quorum"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

// TestSyncReplicate: the sync policy's Replicate blocks on the
// successor's append and propagates its failure — the caller's ack
// gate.
func TestSyncReplicate(t *testing.T) {
	rs := newReplicaSink(t)
	s, err := New(Options{Policy: PolicySync, Origin: "n0", Target: target(rs)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ev := journal.Event{Type: journal.EventAccepted, ID: "job-000001", Spec: []byte(`{"kind":"timing"}`)}
	if err := s.Replicate(ev); err != nil {
		t.Fatalf("sync replicate: %v", err)
	}
	if got := rs.count("n0"); got != 1 {
		t.Fatalf("successor holds %d events, want 1", got)
	}
	if st := s.Stats(); st.Streamed != 1 || st.StreamErrors != 0 {
		t.Fatalf("stats = %+v, want 1 streamed, 0 errors", st)
	}

	rs.setFail(true)
	if err := s.Replicate(ev); err == nil {
		t.Fatal("sync replicate to a failing successor returned nil; the ack gate is broken")
	}
	if st := s.Stats(); st.StreamErrors != 1 {
		t.Fatalf("stats = %+v, want 1 stream error", st)
	}
}

// TestSyncReplicateFaultPoint: the repl.stream fault point withholds
// the append (and the ack) deterministically.
func TestSyncReplicateFaultPoint(t *testing.T) {
	rs := newReplicaSink(t)
	reg := faultinject.New()
	if err := reg.Arm(FaultStream+"=error:stream severed,count:1", 1); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Policy: PolicySync, Origin: "n0", Target: target(rs), Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ev := journal.Event{Type: journal.EventAccepted, ID: "job-000001"}
	if err := s.Replicate(ev); err == nil {
		t.Fatal("armed repl.stream did not fail the replicate")
	}
	if got := rs.count("n0"); got != 0 {
		t.Fatalf("successor holds %d events after an injected stream failure, want 0", got)
	}
	if err := s.Replicate(ev); err != nil {
		t.Fatalf("replicate after the fault's count expired: %v", err)
	}
}

// TestAsyncReplicate: the async policy never fails the caller and the
// background flusher delivers the buffered records; Close drains the
// tail.
func TestAsyncReplicate(t *testing.T) {
	rs := newReplicaSink(t)
	s, err := New(Options{Policy: PolicyAsync, Origin: "n1", Target: target(rs)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Replicate(journal.Event{Type: journal.EventAccepted, ID: "job"}); err != nil {
			t.Fatalf("async replicate: %v", err)
		}
	}
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for rs.count("n1") < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("successor holds %d events after close, want 10", rs.count("n1"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close() // idempotent
}

// TestNonePolicyNoop: none (and a nil streamer) replicate vacuously.
func TestNonePolicyNoop(t *testing.T) {
	s, err := New(Options{Policy: PolicyNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Replicate(journal.Event{Type: journal.EventAccepted, ID: "x"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	var nilStreamer *Streamer
	if err := nilStreamer.Replicate(journal.Event{}); err != nil {
		t.Fatal(err)
	}
	nilStreamer.Close()
	if nilStreamer.Policy() != PolicyNone {
		t.Fatal("nil streamer policy != none")
	}
}

// TestNoSuccessor: an empty target URL (one-node herd) succeeds
// vacuously under sync.
func TestNoSuccessor(t *testing.T) {
	s, err := New(Options{
		Policy: PolicySync,
		Origin: "n0",
		Target: func() (string, string) { return "", "" },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Replicate(journal.Event{Type: journal.EventAccepted, ID: "x"}); err != nil {
		t.Fatalf("replicate with no successor: %v", err)
	}
}
