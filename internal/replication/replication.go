// Package replication streams a thermherdd backend's journal records
// to its ring successor, forming the primary→backup chain that lets
// the herd survive a kill -9: the successor holds a replica of every
// acked-but-unfinished job and can adopt it when the gateway declares
// the primary dead. The wire format is the journal's own CRC-framed
// record stream (journal.EncodeFrames), POSTed to the successor's
// /v1/replica/{origin} endpoint, so the replica file a successor keeps
// is byte-compatible with a WAL segment.
//
// The ack policy decides what a submit acknowledgment promises:
//
//   - none: no replication; a dead node's jobs die with it (the PR 5
//     WAL still covers the node's own restart).
//   - async: records are buffered and streamed in the background; an
//     ack can be lost if the node dies inside the buffer window.
//   - sync: the submit ack waits for the successor's append; a lost
//     ack requires losing both chain links at once.
//
// The successor is resolved lazily per send through Options.Target, so
// ring-epoch bumps (joins, removals) re-derive the chain without
// restarting the streamer.
//
//thermlint:goroutines
package replication

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"thermalherd/internal/faultinject"
	"thermalherd/internal/journal"
)

// FaultStream fires before each replica batch is sent; an error action
// simulates the successor rejecting or never receiving the append
// (under the sync policy the submit ack is then withheld).
//
//thermlint:faultpoints
const (
	FaultStream = "repl.stream"
)

// Policy is the replication ack policy.
type Policy string

const (
	// PolicyNone disables replication.
	PolicyNone Policy = "none"
	// PolicyAsync buffers records and streams them in the background;
	// acks do not wait.
	PolicyAsync Policy = "async"
	// PolicySync blocks each journaled event on the successor's append;
	// an acked job survives the primary's death.
	PolicySync Policy = "sync"
)

// ParsePolicy validates a policy string (the -repl flag); empty means
// PolicyNone.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyNone, PolicyAsync, PolicySync:
		return Policy(s), nil
	case "":
		return PolicyNone, nil
	}
	return "", fmt.Errorf("replication: unknown policy %q (want none, async, or sync)", s)
}

// Options configures New.
type Options struct {
	// Policy is the ack policy; PolicyNone yields a streamer whose
	// Replicate is a no-op.
	Policy Policy
	// Origin is this node's herd name; it keys the successor's replica
	// store and suffixes adopted job ids.
	Origin string
	// Target resolves the current successor as (name, baseURL). It is
	// called per send so chain re-derivation after a ring-epoch bump
	// takes effect immediately; returning an empty URL skips the send
	// (no successor — a one-node herd).
	Target func() (name, url string)
	// Client is the HTTP client for replica appends; nil uses a
	// 2-second-timeout default.
	Client *http.Client
	// Faults is the chaos fault-injection registry (may be nil).
	Faults *faultinject.Registry
}

// Stats counts a streamer's sends since New.
type Stats struct {
	// Streamed counts events acknowledged by the successor.
	Streamed uint64
	// StreamErrors counts batches the successor rejected or never
	// received.
	StreamErrors uint64
	// Dropped counts events discarded because the async buffer was full
	// (never under sync: those fail the ack instead).
	Dropped uint64
}

// asyncBuffer bounds the async policy's in-flight window; a full
// buffer drops the oldest-pending semantics in favor of dropping the
// new event and counting it, so a dead successor cannot wedge submits.
const asyncBuffer = 1024

// Streamer replicates journal events to the ring successor under one
// ack policy. Methods are safe for concurrent use.
type Streamer struct {
	opts   Options
	client *http.Client

	streamed     atomic.Uint64
	streamErrors atomic.Uint64
	dropped      atomic.Uint64

	// ch feeds the async flusher; nil under none/sync.
	ch   chan journal.Event
	stop chan struct{}
	done chan struct{}

	closeOnce sync.Once
}

// New builds a streamer for the given policy. Under PolicyAsync a
// background flusher goroutine starts immediately; Close stops it.
func New(opts Options) (*Streamer, error) {
	if _, err := ParsePolicy(string(opts.Policy)); err != nil {
		return nil, err
	}
	if opts.Policy == "" {
		opts.Policy = PolicyNone
	}
	if opts.Policy != PolicyNone {
		if opts.Origin == "" {
			return nil, fmt.Errorf("replication: Options.Origin is required for policy %s", opts.Policy)
		}
		if opts.Target == nil {
			return nil, fmt.Errorf("replication: Options.Target is required for policy %s", opts.Policy)
		}
	}
	s := &Streamer{opts: opts, client: opts.Client}
	if s.client == nil {
		s.client = &http.Client{Timeout: 2 * time.Second}
	}
	if opts.Policy == PolicyAsync {
		s.ch = make(chan journal.Event, asyncBuffer)
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.flushLoop()
	}
	return s, nil
}

// Policy reports the configured ack policy.
func (s *Streamer) Policy() Policy {
	if s == nil {
		return PolicyNone
	}
	return s.opts.Policy
}

// Replicate ships one journal event to the successor per the policy.
// Under sync a non-nil error means the event is NOT replicated and the
// caller must withhold the acknowledgment; under async and none the
// return is always nil (failures are counted, not propagated). Safe on
// a nil receiver (no-op), so callers need no policy branching.
func (s *Streamer) Replicate(ev journal.Event) error {
	if s == nil || s.opts.Policy == PolicyNone {
		return nil
	}
	if s.opts.Policy == PolicySync {
		return s.send([]journal.Event{ev})
	}
	select {
	case s.ch <- ev:
	default:
		s.dropped.Add(1)
	}
	return nil
}

// flushLoop drains the async buffer, batching whatever is pending into
// one replica append per wakeup.
func (s *Streamer) flushLoop() {
	defer close(s.done)
	for {
		var first journal.Event
		select {
		case <-s.stop:
			// Final drain: ship whatever is still buffered so a graceful
			// close loses nothing that was accepted into the buffer.
			for {
				select {
				case ev := <-s.ch:
					s.send([]journal.Event{ev}) // best-effort; errors are counted
				default:
					return
				}
			}
		case first = <-s.ch:
		}
		batch := []journal.Event{first}
		for len(batch) < 64 {
			select {
			case ev := <-s.ch:
				batch = append(batch, ev)
			default:
				goto ship
			}
		}
	ship:
		s.send(batch) // best-effort; errors are counted
	}
}

// send POSTs one framed batch to the current successor's replica
// endpoint. An empty target URL (no successor) succeeds vacuously.
func (s *Streamer) send(events []journal.Event) error {
	if ferr := s.opts.Faults.Fire(FaultStream); ferr != nil {
		s.streamErrors.Add(1)
		return ferr
	}
	_, base := s.opts.Target()
	if base == "" {
		return nil
	}
	body, err := journal.EncodeFrames(events)
	if err != nil {
		s.streamErrors.Add(1)
		return err
	}
	target := base + "/v1/replica/" + url.PathEscape(s.opts.Origin)
	resp, err := s.client.Post(target, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		s.streamErrors.Add(1)
		return fmt.Errorf("replication: append to %s: %w", target, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		s.streamErrors.Add(1)
		return fmt.Errorf("replication: append to %s: HTTP %d", target, resp.StatusCode)
	}
	s.streamed.Add(uint64(len(events)))
	return nil
}

// Stats returns send counts since New.
func (s *Streamer) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Streamed:     s.streamed.Load(),
		StreamErrors: s.streamErrors.Load(),
		Dropped:      s.dropped.Load(),
	}
}

// Close stops the async flusher after a final best-effort drain of the
// buffer. Idempotent; a nil or non-async streamer closes trivially.
func (s *Streamer) Close() {
	if s == nil || s.ch == nil {
		return
	}
	s.closeOnce.Do(func() {
		close(s.stop)
		<-s.done
	})
}
