package qos

// FairQueue holds queued items in per-tenant, per-class FIFO lanes and
// dequeues with weighted round-robin across tenants within a class, so
// one tenant's backlog cannot head-of-line-block the others. Class
// preference (shorts before longs, capacity caps) is the caller's
// policy: Pop takes the class to draw from.
//
// The zero tenant weight means "use the default weight" (1). A tenant
// with weight w gets up to w consecutive dequeues per round-robin turn.
//
// FairQueue is not goroutine-safe; the owning scheduler serializes
// access under its own lock.
type FairQueue[T any] struct {
	weights       map[string]int
	defaultWeight int
	classes       [NumClasses]*classLanes[T]
	size          int
}

// classLanes is one class's set of per-tenant FIFO lanes plus the
// round-robin cursor state.
type classLanes[T any] struct {
	// tenants is the rotation order: tenants appear once, in first-push
	// order, and stay (the tenant set is small and bounded upstream).
	tenants []string
	lanes   map[string][]T
	// rr indexes tenants at the tenant whose turn it is; credit is how
	// many consecutive dequeues that tenant has left this turn.
	rr     int
	credit int
}

// NewFairQueue builds a fair queue with the given per-tenant weights
// (nil for all-equal). Weights < 1 are treated as 1.
func NewFairQueue[T any](weights map[string]int) *FairQueue[T] {
	fq := &FairQueue[T]{weights: weights, defaultWeight: 1}
	for i := range fq.classes {
		fq.classes[i] = &classLanes[T]{lanes: make(map[string][]T)}
	}
	return fq
}

// weight returns tenant's configured dequeue weight, at least 1.
func (fq *FairQueue[T]) weight(tenant string) int {
	if w, ok := fq.weights[tenant]; ok && w >= 1 {
		return w
	}
	return fq.defaultWeight
}

// Push appends item to tenant's lane for class.
func (fq *FairQueue[T]) Push(tenant string, class Class, item T) {
	cl := fq.classes[class]
	if _, ok := cl.lanes[tenant]; !ok {
		cl.tenants = append(cl.tenants, tenant)
	}
	cl.lanes[tenant] = append(cl.lanes[tenant], item)
	fq.size++
}

// PushFront prepends item to tenant's lane for class, for requeueing
// recovered work ahead of new arrivals.
func (fq *FairQueue[T]) PushFront(tenant string, class Class, item T) {
	cl := fq.classes[class]
	if _, ok := cl.lanes[tenant]; !ok {
		cl.tenants = append(cl.tenants, tenant)
	}
	cl.lanes[tenant] = append([]T{item}, cl.lanes[tenant]...)
	fq.size++
}

// Pop removes and returns the next item of class under weighted
// round-robin, or false if the class has nothing queued.
func (fq *FairQueue[T]) Pop(class Class) (T, bool) {
	var zero T
	cl := fq.classes[class]
	if len(cl.tenants) == 0 {
		return zero, false
	}
	// Scan at most one full rotation for a non-empty lane, starting at
	// the cursor. Empty lanes forfeit their turn.
	for scanned := 0; scanned < len(cl.tenants); scanned++ {
		t := cl.tenants[cl.rr]
		lane := cl.lanes[t]
		if len(lane) == 0 {
			cl.advance()
			continue
		}
		if cl.credit <= 0 {
			cl.credit = fq.weight(t)
		}
		item := lane[0]
		cl.lanes[t] = lane[1:]
		fq.size--
		cl.credit--
		if cl.credit <= 0 || len(cl.lanes[t]) == 0 {
			cl.advance()
		}
		return item, true
	}
	return zero, false
}

// advance moves the cursor to the next tenant and resets its credit.
func (cl *classLanes[T]) advance() {
	cl.rr = (cl.rr + 1) % len(cl.tenants)
	cl.credit = 0
}

// Len returns the total number of queued items across classes.
func (fq *FairQueue[T]) Len() int { return fq.size }

// LenClass returns the number of queued items in class.
func (fq *FairQueue[T]) LenClass(class Class) int {
	cl := fq.classes[class]
	n := 0
	for _, t := range cl.tenants {
		n += len(cl.lanes[t])
	}
	return n
}

// Heads calls fn with the head item of every non-empty lane (both
// classes), in rotation order. Used to compute the oldest head-of-line
// wait for brownout admission.
func (fq *FairQueue[T]) Heads(fn func(item T)) {
	for _, cl := range fq.classes {
		for _, t := range cl.tenants {
			if lane := cl.lanes[t]; len(lane) > 0 {
				fn(lane[0])
			}
		}
	}
}

// Drain removes and returns every queued item, shorts first, each class
// in rotation order. The queue is empty afterwards.
func (fq *FairQueue[T]) Drain() []T {
	out := make([]T, 0, fq.size)
	for _, cl := range fq.classes {
		for _, t := range cl.tenants {
			out = append(out, cl.lanes[t]...)
			delete(cl.lanes, t)
		}
		cl.tenants = cl.tenants[:0]
		cl.rr, cl.credit = 0, 0
	}
	fq.size = 0
	return out
}
