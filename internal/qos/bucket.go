package qos

import (
	"sync"
	"time"
)

// Buckets is a set of per-tenant token buckets for admission quotas:
// each tenant accrues rate tokens/second up to burst, and every
// admission takes one token. Time enters only through the now argument
// (the caller owns the clock seam), so refill is lazy and the type
// stays deterministic under test.
type Buckets struct {
	mu    sync.Mutex
	rate  float64
	burst float64
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBucketTenants bounds the per-tenant map; beyond it, unseen tenants
// share one overflow bucket (keyed "") rather than growing memory
// without bound under tenant-churn abuse.
const maxBucketTenants = 4096

// NewBuckets builds a bucket set granting rate tokens/second with the
// given burst capacity to every tenant. Returns nil if rate <= 0,
// meaning quotas are disabled.
func NewBuckets(rate float64, burst int) *Buckets {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &Buckets{rate: rate, burst: float64(burst), m: make(map[string]*bucket)}
}

// Take attempts to spend one token from tenant's bucket at time now.
// On refusal it returns how long until a token will be available, for
// the Retry-After header. A nil *Buckets admits everything.
func (b *Buckets) Take(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	bk, exists := b.m[tenant]
	if !exists {
		if len(b.m) >= maxBucketTenants {
			tenant = ""
			bk = b.m[tenant]
		}
		if bk == nil {
			bk = &bucket{tokens: b.burst, last: now}
			b.m[tenant] = bk
		}
	}
	if now.After(bk.last) {
		bk.tokens += b.rate * now.Sub(bk.last).Seconds()
		if bk.tokens > b.burst {
			bk.tokens = b.burst
		}
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	need := (1 - bk.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
