package qos

import (
	"testing"
	"time"
)

func TestPredictorDefaultsShort(t *testing.T) {
	p := NewPredictor(0)
	if got := p.Predict("timing/gcc/default"); got != ClassShort {
		t.Fatalf("unseen key predicted %v, want short", got)
	}
	st := p.Stats()
	if st.Predictions != 1 || st.PredictedShort != 1 {
		t.Fatalf("stats = %+v, want 1 prediction, 1 short", st)
	}
}

func TestPredictorSaturationAndHysteresis(t *testing.T) {
	p := NewPredictor(0)
	const key = "thermal/mesa/hot"

	// Weakly short (1) + one overrun observation -> 2 -> predicts long.
	p.Observe(key, ClassShort, true)
	if got := p.Predict(key); got != ClassLong {
		t.Fatalf("after one overrun, predict = %v, want long", got)
	}

	// Saturate toward long: many overruns stick at 3 ...
	for i := 0; i < 10; i++ {
		p.Observe(key, ClassLong, true)
	}
	// ... so one fast run (3 -> 2) must NOT flip the prediction back:
	// that is the hysteresis the 2-bit counter buys over a 1-bit one.
	p.Observe(key, ClassLong, false)
	if got := p.Predict(key); got != ClassLong {
		t.Fatalf("hysteresis broken: one fast run flipped long -> %v", got)
	}
	// A second consecutive fast run (2 -> 1) does flip it.
	p.Observe(key, ClassLong, false)
	if got := p.Predict(key); got != ClassShort {
		t.Fatalf("after two fast runs, predict = %v, want short", got)
	}

	// Saturate toward short and check the same hysteresis on the way up.
	for i := 0; i < 10; i++ {
		p.Observe(key, ClassShort, false)
	}
	p.Observe(key, ClassShort, true) // 0 -> 1, still short
	if got := p.Predict(key); got != ClassShort {
		t.Fatalf("hysteresis broken: one overrun flipped short -> %v", got)
	}
	p.Observe(key, ClassShort, true) // 1 -> 2, now long
	if got := p.Predict(key); got != ClassLong {
		t.Fatalf("after two overruns, predict = %v, want long", got)
	}
}

func TestPredictorDemoteRetrains(t *testing.T) {
	p := NewPredictor(0)
	const key = "experiment/vortex/sweep"
	// Unseen key is weakly short: a single mid-flight demotion must be
	// enough to flip the next prediction to long.
	if got := p.Predict(key); got != ClassShort {
		t.Fatalf("predict = %v, want short", got)
	}
	p.Demote(key)
	if got := p.Predict(key); got != ClassLong {
		t.Fatalf("after demotion, predict = %v, want long", got)
	}
	st := p.Stats()
	if st.Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", st.Demotions)
	}
	// A strongly-short key keeps one notch of hysteresis: two demotions
	// needed.
	const key2 = "timing/gzip/default"
	p.Observe(key2, ClassShort, false) // 1 -> 0
	p.Demote(key2)                     // 0 -> 1
	if got := p.Predict(key2); got != ClassShort {
		t.Fatalf("strongly-short key flipped after one demotion")
	}
	p.Demote(key2) // 1 -> 2
	if got := p.Predict(key2); got != ClassLong {
		t.Fatalf("strongly-short key still short after two demotions")
	}
}

func TestPredictorMispredictAccounting(t *testing.T) {
	p := NewPredictor(0)
	p.Observe("k", ClassShort, true)  // predicted short, ran long: mispredict
	p.Observe("k", ClassLong, true)   // correct
	p.Observe("k", ClassLong, false)  // predicted long, ran short: mispredict
	p.Observe("k", ClassShort, false) // correct
	if st := p.Stats(); st.Mispredicts != 2 {
		t.Fatalf("mispredicts = %d, want 2", st.Mispredicts)
	}
}

func TestPredictorBounded(t *testing.T) {
	p := NewPredictor(2)
	p.Observe("a", ClassShort, true)
	p.Observe("b", ClassShort, true)
	// Table full: "c" cannot materialize, so training it is dropped and
	// it keeps predicting the default.
	p.Observe("c", ClassShort, true)
	p.Observe("c", ClassShort, true)
	if p.Len() != 2 {
		t.Fatalf("len = %d, want 2", p.Len())
	}
	if got := p.Predict("c"); got != ClassShort {
		t.Fatalf("overflow key predicted %v, want default short", got)
	}
}

func TestFairQueueRoundRobin(t *testing.T) {
	fq := NewFairQueue[string](nil)
	fq.Push("a", ClassShort, "a1")
	fq.Push("a", ClassShort, "a2")
	fq.Push("a", ClassShort, "a3")
	fq.Push("b", ClassShort, "b1")
	fq.Push("b", ClassShort, "b2")
	fq.Push("c", ClassShort, "c1")
	var got []string
	for {
		it, ok := fq.Pop(ClassShort)
		if !ok {
			break
		}
		got = append(got, it)
	}
	want := []string{"a1", "b1", "c1", "a2", "b2", "a3"}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
	if fq.Len() != 0 {
		t.Fatalf("len = %d after drain, want 0", fq.Len())
	}
}

func TestFairQueueWeights(t *testing.T) {
	fq := NewFairQueue[string](map[string]int{"big": 2})
	for i := 0; i < 4; i++ {
		fq.Push("big", ClassShort, "B")
		fq.Push("small", ClassShort, "s")
	}
	var got string
	for {
		it, ok := fq.Pop(ClassShort)
		if !ok {
			break
		}
		got += it
	}
	// big gets 2 dequeues per turn, small gets 1.
	if want := "BBsBBsss"; got != want {
		t.Fatalf("weighted order = %q, want %q", got, want)
	}
}

func TestFairQueueClassesIsolated(t *testing.T) {
	fq := NewFairQueue[int](nil)
	fq.Push("t", ClassShort, 1)
	fq.Push("t", ClassLong, 2)
	if n := fq.LenClass(ClassLong); n != 1 {
		t.Fatalf("long len = %d, want 1", n)
	}
	if _, ok := fq.Pop(ClassLong); !ok {
		t.Fatal("long pop failed")
	}
	if _, ok := fq.Pop(ClassLong); ok {
		t.Fatal("long pop returned short-class item")
	}
	if v, ok := fq.Pop(ClassShort); !ok || v != 1 {
		t.Fatalf("short pop = %v %v, want 1 true", v, ok)
	}
}

func TestFairQueuePushFrontAndDrain(t *testing.T) {
	fq := NewFairQueue[string](nil)
	fq.Push("t", ClassShort, "x")
	fq.PushFront("t", ClassShort, "recovered")
	if v, _ := fq.Pop(ClassShort); v != "recovered" {
		t.Fatalf("head = %q, want recovered", v)
	}
	fq.Push("u", ClassLong, "l1")
	fq.Push("t", ClassShort, "s1")
	out := fq.Drain()
	if len(out) != 3 || fq.Len() != 0 {
		t.Fatalf("drain = %v (len %d), want 3 items and empty queue", out, fq.Len())
	}
	if out[0] != "x" && out[0] != "s1" {
		t.Fatalf("drain should emit shorts first, got %v", out)
	}
}

func TestFairQueueHeads(t *testing.T) {
	fq := NewFairQueue[int](nil)
	fq.Push("a", ClassShort, 10)
	fq.Push("a", ClassShort, 11)
	fq.Push("b", ClassLong, 20)
	var heads []int
	fq.Heads(func(it int) { heads = append(heads, it) })
	if len(heads) != 2 || heads[0] != 10 || heads[1] != 20 {
		t.Fatalf("heads = %v, want [10 20]", heads)
	}
}

func TestBucketsTakeAndRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBuckets(2, 2) // 2 tokens/sec, burst 2
	if ok, _ := b.Take("t", now); !ok {
		t.Fatal("first take refused")
	}
	if ok, _ := b.Take("t", now); !ok {
		t.Fatal("second take refused (burst 2)")
	}
	ok, retry := b.Take("t", now)
	if ok {
		t.Fatal("third take admitted with empty bucket")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	// At 2 tokens/sec, 500ms refills exactly the one token needed.
	if ok, _ := b.Take("t", now.Add(500*time.Millisecond)); !ok {
		t.Fatal("take refused after refill window")
	}
	// Tenants are independent.
	if ok, _ := b.Take("u", now); !ok {
		t.Fatal("fresh tenant refused")
	}
}

func TestBucketsDisabled(t *testing.T) {
	var b *Buckets
	if ok, _ := b.Take("t", time.Unix(0, 0)); !ok {
		t.Fatal("nil buckets must admit")
	}
	if NewBuckets(0, 5) != nil {
		t.Fatal("rate 0 should disable quotas")
	}
}
