// Package qos is the service-level analogue of the paper's width
// predictor: where the microarchitecture classifies instructions as
// narrow/wide with PC-indexed 2-bit saturating counters so the hot ones
// can be herded to the cool die, this package classifies *jobs* as
// short/long with spec-indexed 2-bit saturating counters so heavyweight
// sweeps can be herded away from the interactive fast pool.
//
// It provides the three mechanisms the server's QoS scheduler composes:
//
//   - Predictor: 2-bit saturating counters keyed by a caller-derived
//     (workload, config-class) string, trained on observed runtimes,
//     with the demotion path as the analogue of the paper's
//     unsafe-mispredict stall/retrain loop.
//   - FairQueue: per-tenant, per-class FIFO queues with weighted
//     round-robin dequeue across tenants, so no tenant's backlog can
//     monopolize admission.
//   - Buckets: per-tenant token buckets for admission quotas.
//
// Everything here is pure data: time enters only as explicit arguments,
// so equal call sequences give equal outcomes.
//
//thermlint:deterministic
//thermlint:goroutines
package qos

import "sync"

// Class is a job's predicted cost class.
type Class uint8

const (
	// ClassShort marks jobs predicted to finish within the short-class
	// budget; they are eligible for the reserved fast pool.
	ClassShort Class = iota
	// ClassLong marks jobs predicted to overrun the budget; their
	// concurrency is capped so they cannot occupy the whole worker pool.
	ClassLong
)

// NumClasses sizes per-class arrays.
const NumClasses = 2

// String returns the wire name of the class ("short" or "long").
func (c Class) String() string {
	if c == ClassLong {
		return "long"
	}
	return "short"
}

// ParseClass maps a wire name back to a Class; anything but "long" is
// short (the optimistic default).
func ParseClass(s string) Class {
	if s == "long" {
		return ClassLong
	}
	return ClassShort
}

// PredictorStats is a snapshot of the predictor's accounting.
type PredictorStats struct {
	// Predictions counts Predict calls; PredictedShort/PredictedLong
	// attribute the outcomes.
	Predictions    uint64
	PredictedShort uint64
	PredictedLong  uint64
	// Mispredicts counts Observe calls whose observed class differed
	// from the prediction made at admission.
	Mispredicts uint64
	// Demotions counts Demote calls: predicted-short jobs that overran
	// their budget mid-flight and were retrained toward long.
	Demotions uint64
}

// Predictor classifies jobs short/long with 2-bit saturating counters,
// exactly the internal/predictor twoBitTable idiom lifted to a
// string-keyed table: counter values 0..1 predict short, 2..3 predict
// long. Unseen keys start weakly short (1) — optimistic, because the
// demotion path bounds the damage of a wrong short guess, while a wrong
// long guess would silently waste reserved capacity.
//
// Unlike the fixed hardware tables, the key space is open-ended, so the
// table is bounded: once maxEntries keys exist, unseen keys read the
// default and updates to them are dropped (the hot keys that matter
// were trained long before the table fills).
type Predictor struct {
	mu       sync.Mutex
	counters map[string]uint8
	max      int
	stats    PredictorStats
}

// defaultPredictorEntries bounds the counter table; at ~50 bytes a key
// that is a few MB worst case.
const defaultPredictorEntries = 1 << 16

// weaklyShort is the initial counter value for unseen keys.
const weaklyShort = 1

// NewPredictor builds a predictor bounded to maxEntries keys; 0 means
// a default of 65536.
func NewPredictor(maxEntries int) *Predictor {
	if maxEntries <= 0 {
		maxEntries = defaultPredictorEntries
	}
	return &Predictor{counters: make(map[string]uint8), max: maxEntries}
}

// counter reads key's counter without creating it.
func (p *Predictor) counter(key string) uint8 {
	if c, ok := p.counters[key]; ok {
		return c
	}
	return weaklyShort
}

// bump moves key's counter toward long (+1) or short (-1), saturating
// at [0,3]. Unseen keys materialize at the default first, unless the
// table is full.
func (p *Predictor) bump(key string, towardLong bool) {
	c, ok := p.counters[key]
	if !ok {
		if len(p.counters) >= p.max {
			return
		}
		c = weaklyShort
	}
	if towardLong {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.counters[key] = c
}

// Predict classifies the job behind key: counters >= 2 predict long.
func (p *Predictor) Predict(key string) Class {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Predictions++
	if p.counter(key) >= 2 {
		p.stats.PredictedLong++
		return ClassLong
	}
	p.stats.PredictedShort++
	return ClassShort
}

// Observe trains key's counter with a finished job's outcome: overran
// reports whether the job ran past the short-class budget. predicted is
// the class Predict returned at admission, for mispredict accounting.
func (p *Predictor) Observe(key string, predicted Class, overran bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	observed := ClassShort
	if overran {
		observed = ClassLong
	}
	if observed != predicted {
		p.stats.Mispredicts++
	}
	p.bump(key, overran)
}

// Demote retrains key toward long immediately — the service-level
// analogue of the paper's unsafe-mispredict stall/retrain: a
// predicted-short job overran its budget mid-flight, so the very next
// prediction for a weakly-short key already flips to long, while a
// strongly-short key keeps one notch of hysteresis.
func (p *Predictor) Demote(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Demotions++
	p.bump(key, true)
}

// Stats snapshots the predictor's accounting.
func (p *Predictor) Stats() PredictorStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Len returns the number of trained keys.
func (p *Predictor) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.counters)
}
