// Package stats provides small statistics utilities shared by the
// simulator, power model, and experiment harness: counters, histograms,
// and aggregate measures such as geometric means.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns c/other as a float, or 0 when other is zero.
func (c *Counter) Ratio(other *Counter) float64 {
	if other.n == 0 {
		return 0
	}
	return float64(c.n) / float64(other.n)
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// rejected with an error since the geometric mean is undefined for them.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geometric mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean requires positive values, got %g", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// MustGeoMean is GeoMean that panics on invalid input. It is intended for
// experiment harness code where the inputs are known-positive by
// construction.
func MustGeoMean(xs []float64) float64 {
	g, err := GeoMean(xs)
	if err != nil {
		panic(err)
	}
	return g
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram is a fixed-bucket histogram over int values.
type Histogram struct {
	name    string
	buckets []uint64
	min     int
	width   int
	under   uint64
	over    uint64
	total   uint64
}

// NewHistogram creates a histogram named name with n buckets of the given
// width starting at min. Values below min land in the underflow bucket and
// values at or beyond min+n*width land in the overflow bucket.
func NewHistogram(name string, min, width, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic("stats: histogram width and bucket count must be positive")
	}
	return &Histogram{name: name, buckets: make([]uint64, n), min: min, width: width}
}

// Observe records one occurrence of v.
func (h *Histogram) Observe(v int) {
	h.total++
	if v < h.min {
		h.under++
		return
	}
	idx := (v - h.min) / h.width
	if idx >= len(h.buckets) {
		h.over++
		return
	}
	h.buckets[idx]++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Fraction returns the fraction of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.buckets[i]) / float64(h.total)
}

// HistogramBucket is one bucket of a HistogramSnapshot: Count
// observations fell in [Lo, Hi).
type HistogramBucket struct {
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is an exported, JSON-serializable view of a
// Histogram (used by the thermherdd /metrics endpoint). Empty buckets
// are elided.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Total   uint64            `json:"total"`
	Under   uint64            `json:"underflow,omitempty"`
	Over    uint64            `json:"overflow,omitempty"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current contents.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Name: h.name, Total: h.total, Under: h.under, Over: h.over}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := h.min + i*h.width
		s.Buckets = append(s.Buckets, HistogramBucket{Lo: lo, Hi: lo + h.width, Count: c})
	}
	return s
}

// Quantile returns the q-quantile (q in [0,1], clamped) of the
// snapshot's observations, linearly interpolated within the containing
// bucket. The exact values of underflow and overflow observations were
// not retained, so a target rank landing in the underflow resolves to
// the first bucket's lower bound and one landing in the overflow to
// the last bucket's upper bound. An empty snapshot, or one whose
// observations all fell outside the bucketed range, yields 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Total == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Total)
	cum := float64(s.Under)
	if rank <= cum {
		return float64(s.Buckets[0].Lo)
	}
	for _, b := range s.Buckets {
		c := float64(b.Count)
		if c > 0 && rank <= cum+c {
			frac := (rank - cum) / c
			return float64(b.Lo) + frac*float64(b.Hi-b.Lo)
		}
		cum += c
	}
	return float64(s.Buckets[len(s.Buckets)-1].Hi)
}

// String renders the histogram as a compact text table.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", h.name, h.total)
	if h.under > 0 {
		fmt.Fprintf(&b, "  <%d: %d\n", h.min, h.under)
	}
	for i, c := range h.buckets {
		lo := h.min + i*h.width
		fmt.Fprintf(&b, "  [%d,%d): %d\n", lo, lo+h.width, c)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "  >=%d: %d\n", h.min+len(h.buckets)*h.width, h.over)
	}
	return b.String()
}

// Table is a simple fixed-column text table builder used by the experiment
// harness to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; it must have the same arity as the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.header) {
		panic(fmt.Sprintf("stats: table row has %d cells, want %d", len(cells), len(t.header)))
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting each value with format verbs; strings
// pass through, float64 uses %.3f unless the value is large, in which case
// %.1f is used.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			if math.Abs(v) >= 100 {
				row[i] = fmt.Sprintf("%.1f", v)
			} else {
				row[i] = fmt.Sprintf("%.3f", v)
			}
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns the keys of m in sorted order; a convenience for
// deterministic iteration over string-keyed maps in reports.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
