package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c, d Counter
	c.Inc()
	c.Add(4)
	d.Add(10)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	if got := c.Ratio(&d); got != 0.5 {
		t.Errorf("Ratio = %g, want 0.5", got)
	}
	var zero Counter
	if got := c.Ratio(&zero); got != 0 {
		t.Errorf("Ratio with zero denominator = %g, want 0", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("Reset failed")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{2, 8})
	if err != nil || math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = (%g, %v), want 4", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(nil) should error")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
	if _, err := GeoMean([]float64{-1}); err == nil {
		t.Error("GeoMean with negative should error")
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		return g >= Min(xs)*(1-1e-9) && g <= Max(xs)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustGeoMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGeoMean(empty) did not panic")
		}
	}()
	MustGeoMean(nil)
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %g, want 2", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Min(xs) != 1 || Max(xs) != 3 {
		t.Errorf("Min/Max = %g/%g, want 1/3", Min(xs), Max(xs))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("widths", 0, 16, 4)
	for _, v := range []int{0, 5, 15, 16, 47, 63, 64, -1} {
		h.Observe(v)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if h.Bucket(0) != 3 { // 0, 5, 15
		t.Errorf("bucket 0 = %d, want 3", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 16
		t.Errorf("bucket 1 = %d, want 1", h.Bucket(1))
	}
	if h.Bucket(2) != 1 { // 47
		t.Errorf("bucket 2 = %d, want 1", h.Bucket(2))
	}
	if h.Bucket(3) != 1 { // 63
		t.Errorf("bucket 3 = %d, want 1", h.Bucket(3))
	}
	if got := h.Fraction(0); got != 3.0/8.0 {
		t.Errorf("Fraction(0) = %g, want 0.375", got)
	}
	s := h.String()
	if !strings.Contains(s, "widths") || !strings.Contains(s, "[0,16): 3") {
		t.Errorf("histogram render missing content:\n%s", s)
	}
	// Overflow (64) and underflow (-1) rendered.
	if !strings.Contains(s, ">=64: 1") || !strings.Contains(s, "<0: 1") {
		t.Errorf("histogram render missing under/overflow:\n%s", s)
	}
}

func TestHistogramRejectsBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with zero width did not panic")
		}
	}()
	NewHistogram("x", 0, 0, 4)
}

func TestTable(t *testing.T) {
	tb := NewTable("block", "2D (ps)", "3D (ps)")
	tb.AddRow("adder", "300", "290")
	tb.AddRowf("regfile", 450.0, 310.5)
	s := tb.String()
	for _, want := range []string{"block", "adder", "regfile", "450.0", "310.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), s)
	}
}

func TestTableArityPanic(t *testing.T) {
	tb := NewTable("a", "b")
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong arity did not panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	// 1000 observations spread uniformly over [0,1000) in 10ms buckets:
	// the q-quantile of the underlying distribution is 1000q.
	h := NewHistogram("lat", 0, 10, 100)
	for v := 0; v < 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, c := range []struct{ q, want float64 }{
		{0, 0}, {0.5, 500}, {0.95, 950}, {0.99, 990}, {1, 1000},
	} {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 10 {
			t.Errorf("Quantile(%g) = %g, want ~%g", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolatesWithinBucket(t *testing.T) {
	// All mass in one [100,200) bucket: the quantile moves linearly
	// across the bucket with q.
	h := NewHistogram("lat", 0, 100, 10)
	for i := 0; i < 4; i++ {
		h.Observe(150)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 150 {
		t.Errorf("Quantile(0.5) = %g, want 150", got)
	}
	if got := s.Quantile(0.25); got != 125 {
		t.Errorf("Quantile(0.25) = %g, want 125", got)
	}
	if got := s.Quantile(1); got != 200 {
		t.Errorf("Quantile(1) = %g, want 200", got)
	}
}

func TestQuantileSkewed(t *testing.T) {
	// 90 fast observations and 10 slow ones: p50 sits in the fast
	// bucket, p99 in the slow one.
	h := NewHistogram("lat", 0, 10, 100)
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(905)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < 0 || got >= 10 {
		t.Errorf("p50 = %g, want within fast bucket [0,10)", got)
	}
	if got := s.Quantile(0.99); got < 900 || got > 910 {
		t.Errorf("p99 = %g, want within slow bucket [900,910]", got)
	}
}

func TestQuantileEdges(t *testing.T) {
	h := NewHistogram("lat", 0, 10, 4)
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot Quantile = %g, want 0", got)
	}
	// Only out-of-range observations: no bucket bounds to interpolate.
	h.Observe(-5)
	h.Observe(1000)
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("out-of-range-only Quantile = %g, want 0", got)
	}
	// Mixed: underflow clamps to the first bucket's lower bound,
	// overflow to the last bucket's upper bound; q outside [0,1] clamps.
	h.Observe(15)
	s := h.Snapshot()
	if got := s.Quantile(0.01); got != 10 {
		t.Errorf("underflow-rank Quantile = %g, want first bucket lo 10", got)
	}
	if got := s.Quantile(0.99); got != 20 {
		t.Errorf("overflow-rank Quantile = %g, want last bucket hi 20", got)
	}
	if got := s.Quantile(-3); got != 10 {
		t.Errorf("Quantile(-3) = %g, want clamp to 10", got)
	}
	if got := s.Quantile(7); got != 20 {
		t.Errorf("Quantile(7) = %g, want clamp to 20", got)
	}
}
