// Package config defines the simulated machine configurations: the
// Table 1 baseline (a Core 2-class four-wide out-of-order processor at
// 2.66 GHz) and the paper's five evaluation configurations:
//
//	Base  — the planar baseline.
//	TH    — Thermal Herding mechanisms enabled, baseline frequency
//	        (isolates the IPC cost of width-misprediction stalls).
//	Pipe  — the 3D pipeline optimizations (shorter branch-redirect
//	        path, faster L2 in cycles, no FP-load penalty cycle) at
//	        baseline frequency (isolates their IPC benefit).
//	Fast  — the planar microarchitecture clocked at the 3D frequency
//	        (isolates the IPC cost of more DRAM cycles).
//	3D    — everything combined: the full Thermal Herding 3D processor.
package config

import "thermalherd/internal/core"

// Clock frequencies from the paper's evaluation: the planar baseline at
// 2.66 GHz and the 3D design at 3.93 GHz (+47.9% from the wire-delay
// reduction in the wakeup-select and ALU+bypass loops; see package
// circuit, which derives this number).
const (
	BaseClockGHz   = 2.66
	ThreeDClockGHz = 3.93
)

// DRAMLatencyNs is the main-memory access latency in nanoseconds. It is
// frequency-independent: faster clocks see more cycles per access, the
// effect isolated by the Fast configuration.
const DRAMLatencyNs = 60.0

// Machine is a complete simulated-machine configuration.
type Machine struct {
	// Name identifies the configuration in reports ("Base", "3D", ...).
	Name string

	// ClockGHz is the core clock frequency.
	ClockGHz float64

	// Pipeline widths (Table 1).
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int

	// Window and queue sizes (Table 1).
	ROBSize int
	RSSize  int
	LQSize  int
	SQSize  int
	IFQSize int

	// Functional units (Table 1).
	IntALU    int
	IntShift  int
	IntMulDiv int
	FPAdd     int
	FPMul     int
	FPDiv     int
	// MemPorts is the number of load/store-capable ports; LoadPorts is
	// additional load-only ports.
	MemPorts  int
	LoadPorts int

	// Cache/TLB latencies and geometry.
	L1Latency      int
	L2Latency      int
	L1Size         int
	L1Ways         int
	L2Size         int
	L2Ways         int
	LineSize       int
	ITLBEntries    int
	DTLBEntries    int
	TLBWays        int
	TLBMissPenalty int

	// BTB geometry (Table 1: BTB/iBTB 2K/512-entry, 4-way).
	BTBEntries  int
	BTBWays     int
	IBTBEntries int
	IBTBWays    int
	RASDepth    int

	// MispredictRedirect is the front-end redirect penalty in cycles
	// charged after a mispredicted branch resolves (the back half of
	// the paper's "min 14 cycles" mispredict loop; the front half is
	// the instruction's own journey through the pipeline).
	MispredictRedirect int
	// FPLoadExtraCycle models the extra cycle some microarchitectures
	// spend routing loads to the FP registers (Section 3.8); the 3D
	// bypass compaction removes it.
	FPLoadExtraCycle int

	// ThermalHerding enables width prediction and all the herded 3D
	// structures (Section 3 mechanisms and their stalls).
	ThermalHerding bool
	// WidthPolicy selects the width prediction policy (for ablations).
	WidthPolicy core.OraclePolicy
	// WidthPredEntries sizes the width predictor table.
	WidthPredEntries int
	// AllocPolicy selects the RS allocation policy (for ablations).
	AllocPolicy core.AllocPolicy
	// ThreeD marks a stacked implementation (affects power/thermal
	// modelling; the planar baseline and Fast are not 3D).
	ThreeD bool
}

// DRAMCycles returns the DRAM latency in core cycles at this clock.
func (m *Machine) DRAMCycles() int {
	return int(DRAMLatencyNs*m.ClockGHz + 0.5)
}

// Baseline returns the Table 1 planar machine.
func Baseline() Machine {
	return Machine{
		Name:       "Base",
		ClockGHz:   BaseClockGHz,
		FetchWidth: 4, DecodeWidth: 4, IssueWidth: 6, CommitWidth: 4,
		ROBSize: 96, RSSize: 32, LQSize: 32, SQSize: 20, IFQSize: 16,
		IntALU: 3, IntShift: 2, IntMulDiv: 1,
		FPAdd: 1, FPMul: 1, FPDiv: 1,
		MemPorts: 1, LoadPorts: 1,
		L1Latency: 3, L2Latency: 12,
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 4 << 20, L2Ways: 16,
		LineSize:    64,
		ITLBEntries: 128, DTLBEntries: 256, TLBWays: 4, TLBMissPenalty: 30,
		BTBEntries: 2048, BTBWays: 4,
		IBTBEntries: 512, IBTBWays: 4, RASDepth: 16,
		MispredictRedirect: 10,
		FPLoadExtraCycle:   1,
		WidthPredEntries:   16384,
		WidthPolicy:        core.PolicyTwoBit,
		AllocPolicy:        core.AllocRoundRobin,
	}
}

// TH returns the Thermal Herding configuration at baseline frequency.
func TH() Machine {
	m := Baseline()
	m.Name = "TH"
	m.ThermalHerding = true
	m.AllocPolicy = core.AllocHerded
	return m
}

// Pipe returns the pipeline-optimization configuration at baseline
// frequency: the 3D implementation shortens the branch-redirect path by
// two stages, brings the L2 down to 9 cycles, and removes the FP-load
// routing cycle.
func Pipe() Machine {
	m := Baseline()
	m.Name = "Pipe"
	m.MispredictRedirect = 7
	m.L2Latency = 9
	m.FPLoadExtraCycle = 0
	return m
}

// Fast returns the planar microarchitecture clocked at the 3D frequency.
func Fast() Machine {
	m := Baseline()
	m.Name = "Fast"
	m.ClockGHz = ThreeDClockGHz
	return m
}

// ThreeD returns the full Thermal Herding 3D processor: herding, the
// pipeline optimizations, and the 3D clock.
func ThreeD() Machine {
	m := TH()
	m.Name = "3D"
	m.MispredictRedirect = 7
	m.L2Latency = 9
	m.FPLoadExtraCycle = 0
	m.ClockGHz = ThreeDClockGHz
	m.ThreeD = true
	return m
}

// ThreeDNoTH returns the 3D processor (frequency + pipeline
// optimizations + stacked implementation) without Thermal Herding — the
// middle bar of Figures 9 and 10.
func ThreeDNoTH() Machine {
	m := Pipe()
	m.Name = "3D-noTH"
	m.ClockGHz = ThreeDClockGHz
	m.ThreeD = true
	return m
}

// AllConfigs returns the five Figure 8 configurations in figure order.
func AllConfigs() []Machine {
	return []Machine{Baseline(), TH(), Pipe(), Fast(), ThreeD()}
}

// Registry returns every named configuration: the five Figure 8
// machines plus 3D-noTH.
func Registry() []Machine {
	return append(AllConfigs(), ThreeDNoTH())
}

// ByName looks up a configuration by its report name.
func ByName(name string) (Machine, error) {
	for _, m := range Registry() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, &ConfigError{Config: name, Reason: "unknown configuration (want Base, TH, Pipe, Fast, 3D, 3D-noTH)"}
}

// Validate checks configuration invariants.
func (m *Machine) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{m.ClockGHz > 0, "clock must be positive"},
		{m.FetchWidth > 0 && m.DecodeWidth > 0 && m.IssueWidth > 0 && m.CommitWidth > 0, "widths must be positive"},
		{m.ROBSize > 0 && m.RSSize > 0 && m.LQSize > 0 && m.SQSize > 0, "queues must be positive"},
		{m.RSSize%core.NumDies == 0, "RS size must divide across the die stack"},
		{m.L1Latency > 0 && m.L2Latency > m.L1Latency, "cache latencies must be increasing"},
		{m.IFQSize > 0, "IFQ must be positive"},
	}
	for _, c := range checks {
		if !c.ok {
			return &ConfigError{Config: m.Name, Reason: c.msg}
		}
	}
	return nil
}

// ConfigError reports an invalid machine configuration.
type ConfigError struct {
	Config string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return "config " + e.Config + ": " + e.Reason
}
