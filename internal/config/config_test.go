package config

import (
	"testing"

	"thermalherd/internal/core"
)

func TestAllConfigsValidate(t *testing.T) {
	cfgs := append(AllConfigs(), ThreeDNoTH())
	for _, m := range cfgs {
		if err := m.Validate(); err != nil {
			t.Errorf("config %s invalid: %v", m.Name, err)
		}
	}
}

func TestConfigNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range append(AllConfigs(), ThreeDNoTH()) {
		if seen[m.Name] {
			t.Errorf("duplicate config name %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestBaselineMatchesTable1(t *testing.T) {
	m := Baseline()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"fetch", m.FetchWidth, 4},
		{"issue", m.IssueWidth, 6},
		{"rob", m.ROBSize, 96},
		{"rs", m.RSSize, 32},
		{"lq", m.LQSize, 32},
		{"sq", m.SQSize, 20},
		{"ifq", m.IFQSize, 16},
		{"alu", m.IntALU, 3},
		{"shift", m.IntShift, 2},
		{"muldiv", m.IntMulDiv, 1},
		{"l1", m.L1Size, 32 << 10},
		{"l1ways", m.L1Ways, 8},
		{"l1lat", m.L1Latency, 3},
		{"l2", m.L2Size, 4 << 20},
		{"l2ways", m.L2Ways, 16},
		{"l2lat", m.L2Latency, 12},
		{"itlb", m.ITLBEntries, 128},
		{"dtlb", m.DTLBEntries, 256},
		{"btb", m.BTBEntries, 2048},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (Table 1)", c.name, c.got, c.want)
		}
	}
	if m.ClockGHz != BaseClockGHz {
		t.Errorf("clock = %g, want %g", m.ClockGHz, BaseClockGHz)
	}
}

func TestConfigurationDeltas(t *testing.T) {
	base := Baseline()

	th := TH()
	if !th.ThermalHerding || th.ClockGHz != base.ClockGHz {
		t.Error("TH must enable herding at baseline frequency")
	}
	if th.AllocPolicy != core.AllocHerded {
		t.Error("TH must use the herded allocator")
	}

	pipe := Pipe()
	if pipe.ThermalHerding {
		t.Error("Pipe must not enable herding")
	}
	if pipe.MispredictRedirect >= base.MispredictRedirect {
		t.Error("Pipe must shorten the mispredict redirect")
	}
	if pipe.L2Latency >= base.L2Latency {
		t.Error("Pipe must shorten the L2 latency")
	}
	if pipe.FPLoadExtraCycle != 0 {
		t.Error("Pipe must remove the FP-load routing cycle")
	}
	if pipe.ClockGHz != base.ClockGHz {
		t.Error("Pipe stays at the baseline frequency")
	}

	fast := Fast()
	if fast.ClockGHz != ThreeDClockGHz {
		t.Error("Fast must run at the 3D frequency")
	}
	if fast.MispredictRedirect != base.MispredictRedirect || fast.L2Latency != base.L2Latency {
		t.Error("Fast must be microarchitecturally identical to Base")
	}

	threeD := ThreeD()
	if !threeD.ThermalHerding || !threeD.ThreeD {
		t.Error("3D must combine herding and stacking")
	}
	if threeD.ClockGHz != ThreeDClockGHz {
		t.Error("3D must run at the 3D frequency")
	}
	if threeD.MispredictRedirect != pipe.MispredictRedirect || threeD.L2Latency != pipe.L2Latency {
		t.Error("3D must include the pipeline optimizations")
	}

	noTH := ThreeDNoTH()
	if noTH.ThermalHerding || !noTH.ThreeD {
		t.Error("3D-noTH must stack without herding")
	}
}

func TestDRAMCyclesScaleWithClock(t *testing.T) {
	base := Baseline()
	fast := Fast()
	if fast.DRAMCycles() <= base.DRAMCycles() {
		t.Errorf("Fast DRAM cycles (%d) must exceed Base (%d): same nanoseconds, faster clock",
			fast.DRAMCycles(), base.DRAMCycles())
	}
	// 60 ns at 2.66 GHz ≈ 160 cycles.
	if got := base.DRAMCycles(); got < 155 || got > 165 {
		t.Errorf("base DRAM cycles = %d, want ≈ 160", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Machine){
		func(m *Machine) { m.ClockGHz = 0 },
		func(m *Machine) { m.FetchWidth = 0 },
		func(m *Machine) { m.ROBSize = 0 },
		func(m *Machine) { m.RSSize = 30 }, // not divisible across 4 die
		func(m *Machine) { m.L2Latency = m.L1Latency },
		func(m *Machine) { m.IFQSize = 0 },
	}
	for i, mut := range mutations {
		m := Baseline()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestConfigErrorMessage(t *testing.T) {
	e := &ConfigError{Config: "X", Reason: "bad"}
	if e.Error() != "config X: bad" {
		t.Errorf("unexpected error text %q", e.Error())
	}
}
