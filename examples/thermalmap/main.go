// Thermalmap renders ASCII heat maps of the four die of the 3D
// processor running a memory-intensive workload, with and without
// Thermal Herding, visualizing how herding pulls heat toward the top
// die (the one drawn first, adjacent to the heat sink).
//
// Run with: go run ./examples/thermalmap
package main

import (
	"fmt"
	"log"

	"thermalherd/internal/config"
	"thermalherd/internal/cpu"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/power"
	"thermalherd/internal/thermal"
	"thermalherd/internal/trace"
)

func main() {
	const workload = "yacr2" // the paper's TH worst-case thermal app
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		log.Fatal(err)
	}

	for _, cfg := range []config.Machine{config.ThreeDNoTH(), config.ThreeD()} {
		core, err := cpu.New(cfg, trace.NewGenerator(prof))
		if err != nil {
			log.Fatal(err)
		}
		core.FastForward(2_000_000)
		core.Warmup(100_000)
		stats := core.Run(150_000)

		fp := floorplan.Stacked()
		breakdown, err := power.Compute(cfg, stats, fp)
		if err != nil {
			log.Fatal(err)
		}
		watts := func(u floorplan.Unit) float64 {
			return breakdown.UnitW[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
		}
		stack, err := thermal.BuildStacked(fp, watts, 32, 32)
		if err != nil {
			log.Fatal(err)
		}
		sol, err := stack.Solve()
		if err != nil {
			log.Fatal(err)
		}
		peak, _, _, _ := sol.Peak()
		hotU, _, _ := thermal.HottestUnit(sol, fp)

		fmt.Printf("==== %s on %s: %.1f W, peak %.1f K (hotspot %v, die %d) ====\n",
			cfg.Name, workload, breakdown.TotalW, peak, hotU.Block, hotU.Die)
		for d := 0; d < 4; d++ {
			fmt.Printf("-- die %d (peak %.1f K) --\n", d, sol.PeakOfLayer(thermal.DieLayerIndex(d)))
			fmt.Println(sol.RenderLayer(thermal.DieLayerIndex(d), thermal.AmbientK, peak))
		}
	}
}
