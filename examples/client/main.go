// Command client drives a running thermherdd daemon end to end: it
// submits one job, polls its status until it settles, and prints the
// result document. Run `go run ./cmd/thermherdd` in another terminal
// first, then:
//
//	go run ./examples/client -kind thermal -workload mpeg2enc -config 3D
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		base     = flag.String("addr", "http://localhost:8077", "thermherdd base URL")
		kind     = flag.String("kind", "timing", "job kind: timing, thermal, or experiment")
		workload = flag.String("workload", "patricia", "workload name (timing/thermal)")
		cfg      = flag.String("config", "3D", "machine configuration (timing/thermal)")
		section  = flag.String("section", "", "experiment section (experiment kind)")
		preset   = flag.String("depths", "quick", "depth preset: quick or default")
	)
	flag.Parse()
	if !strings.Contains(*base, "://") {
		*base = "http://" + *base
	}
	if err := run(*base, *kind, *workload, *cfg, *section, *preset); err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
		os.Exit(1)
	}
}

type status struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error"`
	Progress struct {
		Completed int `json:"completed"`
		Total     int `json:"total"`
	} `json:"progress"`
	FromCache bool `json:"from_cache"`
}

func run(base, kind, workload, cfg, section, preset string) error {
	spec := map[string]any{"kind": kind, "depths": map[string]any{"preset": preset}}
	if kind == "experiment" {
		spec["section"] = section
	} else {
		spec["workload"] = workload
		spec["config"] = cfg
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("submit: %s: %s", resp.Status, msg)
	}
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("submitted %s (cache hit: %v)\n", st.ID, st.FromCache)

	for st.State == "queued" || st.State == "running" {
		//thermlint:timer -- example polls a real daemon; no clock seam to thread
		time.Sleep(250 * time.Millisecond)
		if st, err = getStatus(base, st.ID); err != nil {
			return err
		}
		fmt.Printf("  %-8s %d/%d\n", st.State, st.Progress.Completed, st.Progress.Total)
	}
	if st.State != "done" {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}

	res, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return err
	}
	defer res.Body.Close()
	doc, err := io.ReadAll(res.Body)
	if err != nil {
		return err
	}
	fmt.Printf("result (%d bytes):\n%s\n", len(doc), doc)
	return nil
}

func getStatus(base, id string) (status, error) {
	var st status
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return st, fmt.Errorf("status: %s: %s", resp.Status, msg)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}
