// Quickstart: simulate one workload on the planar baseline and on the
// Thermal Herding 3D processor, and print the headline comparison —
// performance, power, and peak temperature.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"thermalherd/internal/config"
	"thermalherd/internal/cpu"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/power"
	"thermalherd/internal/thermal"
	"thermalherd/internal/trace"
)

func main() {
	const workload = "mpeg2enc"
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		log.Fatal(err)
	}

	type result struct {
		ipns  float64
		watts float64
		peakK float64
	}
	results := map[string]result{}

	for _, cfg := range []config.Machine{config.Baseline(), config.ThreeD()} {
		// 1. Simulate: fast-forward to warm state, then measure.
		core, err := cpu.New(cfg, trace.NewGenerator(prof))
		if err != nil {
			log.Fatal(err)
		}
		core.FastForward(2_000_000)
		core.Warmup(100_000)
		stats := core.Run(150_000)

		// 2. Power: activity × per-access energy + clock + leakage.
		fp := floorplan.Planar()
		if cfg.ThreeD {
			fp = floorplan.Stacked()
		}
		breakdown, err := power.Compute(cfg, stats, fp)
		if err != nil {
			log.Fatal(err)
		}

		// 3. Thermals: solve the die stack.
		watts := func(u floorplan.Unit) float64 {
			return breakdown.UnitW[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
		}
		var stack *thermal.Stack
		if cfg.ThreeD {
			stack, err = thermal.BuildStacked(fp, watts, 24, 24)
		} else {
			stack, err = thermal.BuildPlanar(fp, watts, 24, 24)
		}
		if err != nil {
			log.Fatal(err)
		}
		sol, err := stack.Solve()
		if err != nil {
			log.Fatal(err)
		}
		peak, _, _, _ := sol.Peak()

		results[cfg.Name] = result{stats.IPns(cfg.ClockGHz), breakdown.TotalW, peak}
		fmt.Printf("%-5s  %.2f insts/ns   %.1f W   peak %.1f K\n",
			cfg.Name, stats.IPns(cfg.ClockGHz), breakdown.TotalW, peak)
	}

	base, threeD := results["Base"], results["3D"]
	fmt.Printf("\n3D Thermal Herding vs planar on %s:\n", workload)
	fmt.Printf("  performance %+.1f%%   power %+.1f%%   temperature %+.1f K\n",
		100*(threeD.ipns/base.ipns-1),
		100*(threeD.watts/base.watts-1),
		threeD.peakK-base.peakK)
}
