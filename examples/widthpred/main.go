// Widthpred demonstrates the paper's core premise on real computation:
// it runs the TH64 benchmark kernels on the functional emulator and
// reports value-width behaviour, width-prediction accuracy, partial
// value encoding coverage, and PAM address locality for each.
//
// Run with: go run ./examples/widthpred
package main

import (
	"fmt"
	"log"

	"thermalherd/internal/core"
	"thermalherd/internal/emu"
	"thermalherd/internal/isa"
	"thermalherd/internal/kernels"
	"thermalherd/internal/stats"
)

func main() {
	t := stats.NewTable("Kernel", "Insts", "LowWidth", "PredAcc", "PV low", "PAM hit")
	for _, k := range kernels.All() {
		machine := emu.New(k.Program)
		insts, err := machine.Run(2_000_000)
		if err != nil {
			log.Fatalf("%s: %v", k.Name, err)
		}
		if got := machine.IntRegs[k.ResultReg]; got != k.Expected {
			log.Fatalf("%s: wrong result %d, want %d", k.Name, got, k.Expected)
		}

		pred := core.NewWidthPredictor(4096)
		memo := core.NewAddressMemo()
		var pv core.PVStats
		var intResults, low int
		for i := range insts {
			in := &insts[i]
			if in.HasIntDest() && in.Class != isa.ClassJump {
				intResults++
				actualLow := core.IsLowWidth(in.Result)
				if actualLow {
					low++
				}
				p := pred.Predict(in.PC)
				pred.Resolve(in.PC, p, actualLow)
			}
			if in.Class == isa.ClassLoad && in.MemSize == 8 {
				pv.Observe(core.ClassifyPartialValue(in.Result, in.MemAddr))
			}
			if in.IsMem() {
				memo.Broadcast(in.MemAddr, in.Class == isa.ClassStore)
			}
		}
		pvLow := "-"
		if pv.Total() > 0 {
			pvLow = fmt.Sprintf("%.3f", pv.LowFraction())
		}
		t.AddRow(k.Name,
			fmt.Sprintf("%d", len(insts)),
			fmt.Sprintf("%.3f", float64(low)/float64(intResults)),
			fmt.Sprintf("%.3f", pred.Accuracy()),
			pvLow,
			fmt.Sprintf("%.3f", memo.HitRate()))
	}
	fmt.Println("Value-width behaviour of real TH64 kernels (functional emulation):")
	fmt.Print(t)
	fmt.Println("\nThe paper's premise: integer code is overwhelmingly low-width and")
	fmt.Println("highly predictable per PC; pointer chases expose PVAddr locality;")
	fmt.Println("memory addresses share upper bits (high PAM hit rates).")
}
