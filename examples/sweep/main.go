// Sweep explores how the 3D processor's speedup over the planar
// baseline varies with a workload's memory-boundedness — the crossover
// the paper's Figure 8 shows between patricia (+77%) and mcf (+7%).
// It sweeps the working-set size of a synthetic workload and prints the
// speedup curve.
//
// Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"strings"

	"thermalherd/internal/config"
	"thermalherd/internal/cpu"
	"thermalherd/internal/trace"
)

func main() {
	base := config.Baseline()
	threeD := config.ThreeD()

	fmt.Println("3D speedup vs working-set size (synthetic SPECint-like workload)")
	fmt.Printf("%-10s %-10s %-10s %-9s %s\n", "WS", "Base IPC", "3D IPC", "speedup", "")
	for _, wsMB := range []uint64{1, 4, 16, 64, 256} {
		prof, err := trace.ProfileByName("gzip")
		if err != nil {
			log.Fatal(err)
		}
		prof.Name = fmt.Sprintf("sweep-%dMB", wsMB)
		prof.WorkingSet = wsMB << 20
		prof.HotFrac = 0.7

		measure := func(cfg config.Machine) *cpu.Stats {
			c, err := cpu.New(cfg, trace.NewGenerator(prof))
			if err != nil {
				log.Fatal(err)
			}
			c.FastForward(2_000_000)
			c.Warmup(100_000)
			return c.Run(150_000)
		}
		sb := measure(base)
		s3 := measure(threeD)
		speedup := s3.IPns(threeD.ClockGHz) / sb.IPns(base.ClockGHz)
		bar := strings.Repeat("#", int(50*(speedup-1)))
		fmt.Printf("%-10s %-10.3f %-10.3f %+8.1f%% %s\n",
			fmt.Sprintf("%dMB", wsMB), sb.IPC(), s3.IPC(), 100*(speedup-1), bar)
	}
	fmt.Println("\nCompute-bound workloads ride the full +47.9% clock gain (plus")
	fmt.Println("pipeline optimizations); DRAM-bound workloads see little, because")
	fmt.Println("main-memory latency in nanoseconds does not improve.")
}
