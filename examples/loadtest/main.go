// Command loadtest shows how to use internal/loadgen as a library: it
// hosts an in-process daemon, synthesizes a Poisson arrival schedule,
// drives it through the open-loop runner, and prints the report
// summary plus a few fields pulled straight off the Report struct.
// Command thermload wraps this same flow behind flags; reach for the
// library when a benchmark needs programmatic control over the
// schedule or the mix.
//
//	go run ./examples/loadtest
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"thermalherd/internal/loadgen"
	"thermalherd/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

func run() error {
	// Host a daemon in-process on a loopback port.
	srv, err := server.New(server.Config{Workers: runtime.NumCPU(), QueueDepth: 512, CacheSize: 512})
	if err != nil {
		return err
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		hs.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon listening at", base)

	// A deterministic Poisson schedule: same config + seed always
	// yields the same arrival offsets.
	sched, err := loadgen.Synthesize(loadgen.ScheduleConfig{
		Mode:     loadgen.ModePoisson,
		RPS:      40,
		Duration: 3 * time.Second,
		Seed:     7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("schedule: %d arrivals, sha256 %s\n", len(sched), loadgen.ScheduleSHA256(sched)[:12])

	// A custom mix: mostly uniform timing jobs, with a pinned thermal
	// job mixed in. Depths keep each simulation in the milliseconds.
	mix := loadgen.Mix{Entries: []loadgen.MixEntry{
		{Kind: "timing", Weight: 4, Depths: server.Depths{FastForward: 4000, Warmup: 1000, Measure: 2000}},
		{Kind: "thermal", Workload: "mcf", Config: "TH", Weight: 1,
			Depths: server.Depths{FastForward: 4000, Warmup: 1000, Measure: 2000}},
	}}
	specs, err := mix.SampleSpecs(len(sched), 7)
	if err != nil {
		return err
	}

	rep, err := loadgen.Run(context.Background(), loadgen.RunConfig{
		Client:       loadgen.NewClient(base, 3, 50*time.Millisecond, 1),
		Schedule:     sched,
		Specs:        specs,
		MaxInFlight:  128,
		Timeout:      20 * time.Second,
		PollInterval: 5 * time.Millisecond,
		BatchSize:    8,
		SLO:          loadgen.SLO{P95: 2 * time.Second, P99: 5 * time.Second, MaxErrorRate: 0.01},
		Mode:         loadgen.ModePoisson,
		Seed:         7,
	})
	if err != nil {
		return err
	}

	fmt.Print(rep.Summary())
	fmt.Printf("cache hit rate %.2f, %d submit requests for %d arrivals (batch 8)\n",
		rep.CacheHitRate, rep.Achieved.SubmitHTTPRequests, rep.Offered.Arrivals)
	if !rep.SLO.Pass {
		return fmt.Errorf("SLO failed: %v", rep.SLO.Violations)
	}
	return nil
}
