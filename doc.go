// Package thermalherd is a from-scratch Go reproduction of Puttaswamy &
// Loh, "Thermal Herding: Microarchitecture Techniques for Controlling
// Hotspots in High-Performance 3D-Integrated Processors" (HPCA 2007).
//
// The root package holds the benchmark harness (bench_test.go): one
// testing.B benchmark per table and figure of the paper's evaluation.
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory) and the runnable entry points under cmd/ and examples/.
package thermalherd
