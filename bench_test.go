package thermalherd

// One benchmark per table and figure of the paper's evaluation section.
// Each benchmark regenerates its result and reports the headline numbers
// as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end. Simulation depth follows
// experiments.DefaultOptions unless THERMALHERD_FF / THERMALHERD_WARM /
// THERMALHERD_MEASURE are set; the benchmarks share one cached runner, so
// later figures reuse the simulations of earlier ones.

import (
	"sync"
	"testing"

	"thermalherd/internal/circuit"
	"thermalherd/internal/config"
	"thermalherd/internal/core"
	"thermalherd/internal/cpu"
	"thermalherd/internal/experiments"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/thermal"
	"thermalherd/internal/trace"
)

var (
	runnerOnce sync.Once
	sharedR    *experiments.Runner
)

func runner() *experiments.Runner {
	runnerOnce.Do(func() {
		sharedR = experiments.NewRunner(experiments.DefaultOptions())
	})
	return sharedR
}

// BenchmarkTable1Config regenerates Table 1 (machine parameters).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().String() == "" {
			b.Fatal("empty Table 1")
		}
	}
}

// BenchmarkTable2Latencies regenerates Table 2 and reports the derived
// clock frequencies (paper: 2.66 GHz -> 3.93 GHz, +47.9%).
func BenchmarkTable2Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2().String() == "" {
			b.Fatal("empty Table 2")
		}
	}
	b.ReportMetric(circuit.ClockGHz2D(), "GHz-2D")
	b.ReportMetric(circuit.ClockGHz3D(), "GHz-3D")
	b.ReportMetric(100*circuit.FrequencyGain(), "%freq-gain")
}

// BenchmarkFigure8IPC regenerates Figure 8(a): per-group IPC for the
// five configurations.
func BenchmarkFigure8IPC(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure8(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.MoMIPC["Base"], "ipc-base")
		b.ReportMetric(f.MoMIPC["3D"], "ipc-3d")
	}
}

// BenchmarkFigure8IPns regenerates Figure 8(b): instructions per
// nanosecond.
func BenchmarkFigure8IPns(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure8(r)
		if err != nil {
			b.Fatal(err)
		}
		var baseSum, threeDSum float64
		for _, g := range f.Groups {
			baseSum += f.IPns[g]["Base"]
			threeDSum += f.IPns[g]["3D"]
		}
		b.ReportMetric(baseSum/float64(len(f.Groups)), "ipns-base")
		b.ReportMetric(threeDSum/float64(len(f.Groups)), "ipns-3d")
	}
}

// BenchmarkFigure8Speedup regenerates Figure 8(c) and reports the
// paper's headline speedups (paper: mean +47.0%, min +7%, max +77%).
func BenchmarkFigure8Speedup(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure8(r)
		if err != nil {
			b.Fatal(err)
		}
		_, minV, _, maxV := f.MinMaxSpeedup()
		b.ReportMetric(100*(f.MoMSpeedup["3D"]-1), "%mean-speedup")
		b.ReportMetric(100*(minV-1), "%min-speedup")
		b.ReportMetric(100*(maxV-1), "%max-speedup")
	}
}

// BenchmarkFigure9Power regenerates Figure 9 (paper: 90 W planar,
// 72.7 W 3D, 64.3 W 3D+TH; savings 15..30%).
func BenchmarkFigure9Power(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure9(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Planar.TotalW, "W-planar")
		b.ReportMetric(f.NoTH.TotalW, "W-3d")
		b.ReportMetric(f.TH.TotalW, "W-3d-th")
		b.ReportMetric(100*f.MinSaving, "%min-saving")
		b.ReportMetric(100*f.MaxSaving, "%max-saving")
	}
}

// BenchmarkFigure10Thermal regenerates Figure 10(a-c): worst-case peak
// temperatures (paper: 360 K planar, 377 K 3D, 372 K 3D+TH).
func BenchmarkFigure10Thermal(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure10(r, "mpeg2enc")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Worst["Base"].PeakK, "K-planar")
		b.ReportMetric(f.Worst["3D-noTH"].PeakK, "K-3d")
		b.ReportMetric(f.Worst["3D"].PeakK, "K-3d-th")
	}
}

// BenchmarkFigure10SameApp regenerates Figure 10(d-f): the three
// configurations running the same application, including the ROB
// comparison (paper: the herded 3D ROB runs ~5 K cooler than planar).
func BenchmarkFigure10SameApp(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure10(r, "mpeg2enc")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.SameApp["Base"].PeakK, "K-planar")
		b.ReportMetric(f.SameApp["3D"].PeakK, "K-3d-th")
		b.ReportMetric(f.ROBPeak["3D"]-f.ROBPeak["Base"], "K-rob-delta")
	}
}

// BenchmarkDensityStudy regenerates the Section 5.3 experiment (paper:
// the planar 90 W forced into the stack reaches 418 K, +58 K).
func BenchmarkDensityStudy(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		planar, density, err := experiments.DensityStudy(r, "mpeg2enc")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(planar, "K-planar")
		b.ReportMetric(density, "K-4x-density")
	}
}

// BenchmarkWidthPredictionAccuracy measures the suite-wide width
// prediction accuracy (paper: 97%).
func BenchmarkWidthPredictionAccuracy(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		wa, err := experiments.WidthAccuracy(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*wa, "%width-accuracy")
	}
}

// BenchmarkAblationWidthPolicy runs the width-prediction policy
// ablation.
func BenchmarkAblationWidthPolicy(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWidthPolicy(r, "mpeg2enc"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAllocator runs the scheduler-allocation ablation.
func BenchmarkAblationAllocator(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAllocator(r, "mpeg2enc"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks of the core mechanisms themselves ---

// BenchmarkWidthPredictor measures raw width predictor throughput.
func BenchmarkWidthPredictor(b *testing.B) {
	p := core.NewWidthPredictor(16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + 4*(i%4096))
		pred := p.Predict(pc)
		p.Resolve(pc, pred, i%8 != 0)
	}
}

// BenchmarkGeneratorThroughput measures synthetic-stream generation
// speed.
func BenchmarkGeneratorThroughput(b *testing.B) {
	prof, err := trace.ProfileByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	g := trace.NewGenerator(prof)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkSimulatorThroughput measures cycle-level simulation speed
// (100k instructions per op).
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, err := trace.ProfileByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		c, err := cpu.New(config.ThreeD(), trace.NewGenerator(prof))
		if err != nil {
			b.Fatal(err)
		}
		s := c.Run(100_000)
		if s.Insts == 0 {
			b.Fatal("no instructions committed")
		}
	}
}

// --- Extension studies beyond the paper's figures ---

// BenchmarkPerfToPower sweeps the 3D clock to convert performance gains
// into power/temperature reductions (the Black et al. observation the
// paper cites in Section 5.3).
func BenchmarkPerfToPower(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		points, ref, err := experiments.PerfToPower(r, "susan_s", 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ref.TotalW, "W-planar")
		b.ReportMetric(points[0].TotalW, "W-3d-at-base-clock")
	}
}

// BenchmarkMixedPair measures a heterogeneous two-core pairing.
func BenchmarkMixedPair(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.MixedPair(r, config.ThreeD(), "susan_s", "yacr2")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalW, "W")
		b.ReportMetric(res.PeakK, "K")
	}
}

// BenchmarkValueWidthCensus regenerates the Section 3 value-width
// premise table.
func BenchmarkValueWidthCensus(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ValueWidthCensus(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThermalTransient measures hotspot formation after workload
// onset on the 3D design.
func BenchmarkThermalTransient(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		tr, err := experiments.ThermalTransient(r, "mpeg2enc", 20.0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tr.PeakK[len(tr.PeakK)-1], "K-final")
		b.ReportMetric(tr.TimeToWithin(1.0), "s-settle")
	}
}

// BenchmarkThermalSolver measures raw steady-state solver speed.
func BenchmarkThermalSolver(b *testing.B) {
	fp := floorplan.Stacked()
	var area float64
	for _, u := range fp.Units {
		area += u.Area()
	}
	watts := func(u floorplan.Unit) float64 { return 60 * u.Area() / area }
	for i := 0; i < b.N; i++ {
		stack, err := thermal.BuildStacked(fp, watts, 32, 32)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stack.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeakageFeedback iterates power and thermal models to the
// temperature-dependent-leakage fixpoint.
func BenchmarkLeakageFeedback(b *testing.B) {
	r := runner()
	for i := 0; i < b.N; i++ {
		res, err := experiments.LeakageFeedback(r, config.ThreeD(), "mpeg2enc")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PeakK, "K-with-feedback")
	}
}
