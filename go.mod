module thermalherd

go 1.22
