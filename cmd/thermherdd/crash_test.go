package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"thermalherd/internal/loadgen"
	"thermalherd/internal/server"
)

// buildDaemon compiles the thermherdd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "thermherdd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build thermherdd: %v\n%s", err, out)
	}
	return bin
}

var listenRE = regexp.MustCompile(`thermherdd: listening on (\S+)`)

// startDaemon launches the binary against journalDir on an ephemeral
// port, parses the bound address from its log, and returns the process
// plus its base URL.
func startDaemon(t *testing.T, bin, journalDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "64",
		"-journal-dir", journalDir, "-fsync", "always", "-drain", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start thermherdd: %v", err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				addrc <- m[1]
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("thermherdd never logged its listen address")
		return nil, ""
	}
}

// TestKillAndRestartLosesNoAckedJob is the end-to-end crash harness:
// a real thermherdd process with -fsync always is SIGKILLed with jobs
// queued behind a single worker; the restarted daemon must know every
// acknowledged job, finish the unfinished ones, and publish metrics
// satisfying submitted == hits + completed + failed + canceled +
// rejected once the backlog drains.
func TestKillAndRestartLosesNoAckedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-level kill -9 harness")
	}
	bin := buildDaemon(t)
	jdir := t.TempDir()

	cmd, base := startDaemon(t, bin, jdir)
	client := loadgen.NewClient(base, 2, 20*time.Millisecond, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// One worker grinds real (tiny) simulations while submissions pour
	// in, so the kill lands with a deep queue of acked-but-unrun jobs.
	const n = 20
	acked := make([]string, 0, n)
	for i := 0; i < n; i++ {
		spec := server.Spec{Kind: "timing", Config: "TH", Workload: "bitcount",
			Depths: server.Depths{FastForward: 5000 + uint64(i), Warmup: 1000, Measure: 2000}}
		st, err := client.Submit(ctx, spec, fmt.Sprintf("crash-%d", i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		acked = append(acked, st.ID)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	cmd.Wait() // reap; ignore the kill status

	cmd2, base2 := startDaemon(t, bin, jdir)
	defer func() {
		cmd2.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			cmd2.Process.Kill()
		}
	}()
	client2 := loadgen.NewClient(base2, 2, 20*time.Millisecond, 1)

	// Every acked job survived the crash.
	for _, id := range acked {
		if _, err := client2.JobStatus(ctx, id); err != nil {
			t.Fatalf("job %s lost across kill -9: %v", id, err)
		}
	}

	// The recovered backlog drains to completion.
	deadline := time.Now().Add(45 * time.Second)
	for {
		queued, err := client2.CountJobs(ctx, "queued")
		if err != nil {
			t.Fatalf("count queued: %v", err)
		}
		running, err := client2.CountJobs(ctx, "running")
		if err != nil {
			t.Fatalf("count running: %v", err)
		}
		if queued+running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered backlog never drained: %d queued, %d running", queued, running)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, id := range acked {
		st, err := client2.JobStatus(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.State != server.StateDone {
			t.Fatalf("recovered job %s settled as %s: %s", id, st.State, st.Error)
		}
	}

	// The accounting identity reconciles on the restarted daemon.
	doc, err := client2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	jobs := doc["jobs"].(map[string]any)
	cache := doc["cache"].(map[string]any)
	num := func(m map[string]any, k string) float64 {
		v, ok := m[k].(float64)
		if !ok {
			t.Fatalf("metric %q missing: %v", k, m)
		}
		return v
	}
	submitted := num(jobs, "submitted")
	settled := num(cache, "hits") + num(jobs, "completed") + num(jobs, "failed") +
		num(jobs, "canceled") + num(jobs, "rejected")
	if submitted != settled {
		t.Fatalf("accounting identity broken after restart: submitted %v != hits+terminal %v\njobs=%v cache=%v",
			submitted, settled, jobs, cache)
	}
	if got := num(jobs, "completed"); got < 1 {
		t.Fatalf("completed = %v after recovery, want >= 1", got)
	}
	if strings.TrimSpace(base2) == base {
		t.Log("note: restarted daemon reused the same port") // informational only
	}
}
