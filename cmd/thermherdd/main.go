// Command thermherdd serves the Thermal Herding simulation stack as a
// long-lived HTTP daemon: clients submit timing, thermal, or
// experiment jobs, a bounded worker pool executes them, and identical
// resubmissions are answered from a content-addressed result cache.
//
// Usage:
//
//	thermherdd [-addr :8077] [-workers N] [-queue 64] [-cache 128] [-drain 30s]
//	           [-job-timeout 0] [-stuck-after 0] [-brownout 0]
//	           [-faults SPEC] [-fault-seed 1]
//	           [-journal-dir DIR] [-fsync always|interval|off] [-no-recover]
//
// SIGINT/SIGTERM begin a graceful drain: new submissions are rejected
// with 503, running jobs get the -drain deadline to finish, and the
// process exits once the pool is idle. See internal/server for the
// API surface and examples/client for a driver.
//
// The resilience knobs are off by default: -job-timeout bounds each
// job's execution wall time, -stuck-after arms the watchdog that
// retires worker slots whose executors ignore cancellation, and
// -brownout sheds new submissions with 429 + Retry-After once the
// head-of-queue job has waited that long. -faults (or the
// THERMHERD_FAULTS environment variable) arms the chaos-testing
// fault-injection registry; see internal/faultinject for the spec
// grammar. Never arm faults on a daemon doing real work.
//
// -journal-dir enables crash-safe durability: accepted jobs are
// written to a write-ahead log before they are acknowledged, and on
// restart the daemon replays the journal, re-enqueues unfinished work,
// and reports "recovering" on /readyz until the replay completes.
// -fsync picks the append durability policy (always survives power
// loss; interval bounds loss to ~100ms of acks; off survives process
// crashes only). -no-recover discards any persisted state instead of
// replaying it.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"thermalherd/internal/faultinject"
	"thermalherd/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		queueDepth = flag.Int("queue", 64, "max queued (not yet running) jobs")
		cacheSize  = flag.Int("cache", 128, "max cached job results")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline for running jobs")

		jobTimeout = flag.Duration("job-timeout", 0, "per-job execution deadline (0 = none)")
		stuckAfter = flag.Duration("stuck-after", 0, "watchdog: fail jobs running this long and restart their worker slot (0 = off)")
		brownout   = flag.Duration("brownout", 0, "shed new submissions with 429 once the head-of-queue wait exceeds this (0 = off)")

		faults    = flag.String("faults", os.Getenv("THERMHERD_FAULTS"), "fault-injection spec (chaos testing only); defaults to $THERMHERD_FAULTS")
		faultSeed = flag.Int64("fault-seed", 1, "seed for fault-injection firing decisions")

		journalDir = flag.String("journal-dir", "", "write-ahead journal directory; empty disables durability")
		fsync      = flag.String("fsync", "always", "journal fsync policy: always, interval, or off")
		noRecover  = flag.Bool("no-recover", false, "discard persisted journal state instead of replaying it")
	)
	flag.Parse()

	cfg := server.Config{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheSize:     *cacheSize,
		JobTimeout:    *jobTimeout,
		StuckAfter:    *stuckAfter,
		BrownoutAfter: *brownout,
		JournalDir:    *journalDir,
		FsyncPolicy:   *fsync,
		NoRecover:     *noRecover,
	}
	if *faults != "" {
		reg := faultinject.New()
		if err := reg.Arm(*faults, *faultSeed); err != nil {
			log.Fatalf("thermherdd: %v", err)
		}
		cfg.Faults = reg
		log.Printf("thermherdd: CHAOS MODE: fault points armed (seed %d): %s",
			*faultSeed, strings.Join(reg.Points(), ", "))
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("thermherdd: %v", err)
	}
	srv.Start()
	if *journalDir != "" {
		log.Printf("thermherdd: journal at %s (fsync=%s)", *journalDir, *fsync)
	}

	// Listen explicitly so ":0" resolves to a real port before the
	// "listening on" line — the crash-consistency harness starts the
	// daemon on an ephemeral port and parses the address from the log.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("thermherdd: %v", err)
	}
	hs := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("thermherdd: listening on %s (%d workers, queue %d, cache %d)",
		ln.Addr(), *workers, *queueDepth, *cacheSize)

	select {
	case err := <-errc:
		log.Fatalf("thermherdd: %v", err)
	case <-ctx.Done():
	}

	// Keep serving during the drain so clients polling in-flight jobs
	// see their final states and new submissions get clean 503s.
	log.Printf("thermherdd: draining (deadline %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("thermherdd: drain deadline hit, running jobs canceled: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
	}
	log.Printf("thermherdd: stopped")
}
