// Command thermherdd serves the Thermal Herding simulation stack as a
// long-lived HTTP daemon: clients submit timing, thermal, or
// experiment jobs, a bounded worker pool executes them, and identical
// resubmissions are answered from a content-addressed result cache.
//
// Usage:
//
//	thermherdd [-addr :8077] [-workers N] [-queue 64] [-cache 128] [-drain 30s]
//
// SIGINT/SIGTERM begin a graceful drain: new submissions are rejected
// with 503, running jobs get the -drain deadline to finish, and the
// process exits once the pool is idle. See internal/server for the
// API surface and examples/client for a driver.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"thermalherd/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		queueDepth = flag.Int("queue", 64, "max queued (not yet running) jobs")
		cacheSize  = flag.Int("cache", 128, "max cached job results")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline for running jobs")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		CacheSize:  *cacheSize,
	})
	srv.Start()
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("thermherdd: listening on %s (%d workers, queue %d, cache %d)",
		*addr, *workers, *queueDepth, *cacheSize)

	select {
	case err := <-errc:
		log.Fatalf("thermherdd: %v", err)
	case <-ctx.Done():
	}

	// Keep serving during the drain so clients polling in-flight jobs
	// see their final states and new submissions get clean 503s.
	log.Printf("thermherdd: draining (deadline %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("thermherdd: drain deadline hit, running jobs canceled: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
	}
	log.Printf("thermherdd: stopped")
}
