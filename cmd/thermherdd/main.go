// Command thermherdd serves the Thermal Herding simulation stack as a
// long-lived HTTP daemon: clients submit timing, thermal, or
// experiment jobs, a bounded worker pool executes them, and identical
// resubmissions are answered from a content-addressed result cache.
//
// Usage:
//
//	thermherdd [-addr :8077] [-workers N] [-queue 64] [-cache 128] [-drain 30s]
//	           [-job-timeout 0] [-stuck-after 0] [-brownout 0]
//	           [-sched fifo|qos] [-short-budget 2s] [-short-reserve 0]
//	           [-tenant-rate 0] [-tenant-burst 0] [-tenant-weights SPEC]
//	           [-faults SPEC] [-fault-seed 1]
//	           [-journal-dir DIR] [-fsync always|interval|off] [-no-recover]
//	           [-node NAME] [-repl none|async|sync] [-repl-peer NAME=URL]
//
// SIGINT/SIGTERM begin a graceful drain: new submissions are rejected
// with 503, running jobs get the -drain deadline to finish, and the
// process exits once the pool is idle. See internal/server for the
// API surface and examples/client for a driver.
//
// The resilience knobs are off by default: -job-timeout bounds each
// job's execution wall time, -stuck-after arms the watchdog that
// retires worker slots whose executors ignore cancellation, and
// -brownout sheds new submissions with 429 + Retry-After once the
// head-of-queue job has waited that long. -faults (or the
// THERMHERD_FAULTS environment variable) arms the chaos-testing
// fault-injection registry; see internal/faultinject for the spec
// grammar. Never arm faults on a daemon doing real work.
//
// -sched qos enables the multi-tenant QoS scheduler: a 2-bit
// cost predictor classifies jobs short/long at admission, dequeue is
// weighted-fair across tenants (X-Tenant-ID header), long-class
// occupancy is capped so -short-reserve worker slots always drain
// short work, and a predicted-short job overrunning -short-budget is
// demoted mid-flight and its predictor bucket retrained. -tenant-rate
// and -tenant-burst arm a per-tenant token-bucket admission quota;
// -tenant-weights biases the fair dequeue ("live=4,batch=1").
//
// -journal-dir enables crash-safe durability: accepted jobs are
// written to a write-ahead log before they are acknowledged, and on
// restart the daemon replays the journal, re-enqueues unfinished work,
// and reports "recovering" on /readyz until the replay completes.
// -fsync picks the append durability policy (always survives power
// loss; interval bounds loss to ~100ms of acks; off survives process
// crashes only). -no-recover discards any persisted state instead of
// replaying it.
//
// -repl arms successor replication: journal events stream to the
// -repl-peer node (name=url), which buffers them in its replica store
// and can adopt this node's jobs if it dies. Under -repl sync a submit
// is acked only after the peer's append — an acked job then survives
// this node's death; async streams in the background and bounds, not
// eliminates, the loss window. Requires -node so adopted job ids can
// be suffixed with their origin.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"thermalherd/internal/faultinject"
	"thermalherd/internal/replication"
	"thermalherd/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		queueDepth = flag.Int("queue", 64, "max queued (not yet running) jobs")
		cacheSize  = flag.Int("cache", 128, "max cached job results")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline for running jobs")

		jobTimeout = flag.Duration("job-timeout", 0, "per-job execution deadline (0 = none)")
		stuckAfter = flag.Duration("stuck-after", 0, "watchdog: fail jobs running this long and restart their worker slot (0 = off)")
		brownout   = flag.Duration("brownout", 0, "shed new submissions with 429 once the head-of-queue wait exceeds this (0 = off)")

		sched         = flag.String("sched", server.SchedFIFO, "scheduling policy: fifo or qos")
		shortBudget   = flag.Duration("short-budget", 2*time.Second, "qos: runtime budget before a predicted-short job is demoted to the long pool")
		shortReserve  = flag.Int("short-reserve", 0, "qos: worker slots reserved for short jobs (0 = workers/4, min 1)")
		tenantRate    = flag.Float64("tenant-rate", 0, "per-tenant admission quota in jobs/sec (0 = unlimited)")
		tenantBurst   = flag.Int("tenant-burst", 0, "per-tenant admission quota burst size")
		tenantWeights = flag.String("tenant-weights", "", "qos: fair-dequeue weights, e.g. live=4,batch=1 (unlisted tenants weigh 1)")

		faults    = flag.String("faults", os.Getenv("THERMHERD_FAULTS"), "fault-injection spec (chaos testing only); defaults to $THERMHERD_FAULTS")
		faultSeed = flag.Int64("fault-seed", 1, "seed for fault-injection firing decisions")

		journalDir = flag.String("journal-dir", "", "write-ahead journal directory; empty disables durability")
		fsync      = flag.String("fsync", "always", "journal fsync policy: always, interval, or off")
		noRecover  = flag.Bool("no-recover", false, "discard persisted journal state instead of replaying it")

		nodeName = flag.String("node", "", "this node's herd name (required with -repl)")
		repl     = flag.String("repl", "", "replication ack policy: none, async, or sync (empty = none)")
		replPeer = flag.String("repl-peer", "", "successor peer as name=url; journal events stream there")
	)
	flag.Parse()

	replPolicy, err := replication.ParsePolicy(*repl)
	if err != nil {
		log.Fatalf("thermherdd: %v", err)
	}
	var streamer *replication.Streamer
	if replPolicy != replication.PolicyNone {
		peerName, peerURL, ok := strings.Cut(*replPeer, "=")
		if !ok || peerName == "" || peerURL == "" {
			log.Fatalf("thermherdd: -repl %s requires -repl-peer name=url", replPolicy)
		}
		if *nodeName == "" {
			log.Fatalf("thermherdd: -repl %s requires -node", replPolicy)
		}
		peerURL = strings.TrimRight(peerURL, "/")
		streamer, err = replication.New(replication.Options{
			Policy: replPolicy,
			Origin: *nodeName,
			Target: func() (string, string) { return peerName, peerURL },
		})
		if err != nil {
			log.Fatalf("thermherdd: %v", err)
		}
	}

	weights, werr := parseTenantWeights(*tenantWeights)
	if werr != nil {
		log.Fatalf("thermherdd: %v", werr)
	}
	cfg := server.Config{
		NodeName:      *nodeName,
		Repl:          streamer,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheSize:     *cacheSize,
		JobTimeout:    *jobTimeout,
		StuckAfter:    *stuckAfter,
		BrownoutAfter: *brownout,
		SchedPolicy:   *sched,
		ShortBudget:   *shortBudget,
		ShortReserve:  *shortReserve,
		TenantRate:    *tenantRate,
		TenantBurst:   *tenantBurst,
		TenantWeights: weights,
		JournalDir:    *journalDir,
		FsyncPolicy:   *fsync,
		NoRecover:     *noRecover,
	}
	if *faults != "" {
		reg := faultinject.New()
		if err := reg.Arm(*faults, *faultSeed); err != nil {
			log.Fatalf("thermherdd: %v", err)
		}
		cfg.Faults = reg
		log.Printf("thermherdd: CHAOS MODE: fault points armed (seed %d): %s",
			*faultSeed, strings.Join(reg.Points(), ", "))
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("thermherdd: %v", err)
	}
	srv.Start()
	if *journalDir != "" {
		log.Printf("thermherdd: journal at %s (fsync=%s)", *journalDir, *fsync)
	}
	if streamer != nil {
		log.Printf("thermherdd: replication %s -> %s", replPolicy, *replPeer)
	}
	if *sched == server.SchedQoS {
		log.Printf("thermherdd: qos scheduler (short budget %s, reserve %d, tenant rate %g/s burst %d)",
			*shortBudget, *shortReserve, *tenantRate, *tenantBurst)
	}

	// Listen explicitly so ":0" resolves to a real port before the
	// "listening on" line — the crash-consistency harness starts the
	// daemon on an ephemeral port and parses the address from the log.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("thermherdd: %v", err)
	}
	hs := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("thermherdd: listening on %s (%d workers, queue %d, cache %d)",
		ln.Addr(), *workers, *queueDepth, *cacheSize)

	select {
	case err := <-errc:
		log.Fatalf("thermherdd: %v", err)
	case <-ctx.Done():
	}

	// Keep serving during the drain so clients polling in-flight jobs
	// see their final states and new submissions get clean 503s.
	log.Printf("thermherdd: draining (deadline %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("thermherdd: drain deadline hit, running jobs canceled: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
	}
	log.Printf("thermherdd: stopped")
}

// parseTenantWeights parses "live=4,batch=1" into a weight map.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant weight %q (want tenant=N)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad tenant weight %q: want a positive integer", part)
		}
		weights[name] = w
	}
	return weights, nil
}
