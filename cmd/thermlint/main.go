// Command thermlint runs the repo's project-specific static analyzers
// (internal/analysis) over the packages matching its arguments:
//
//	go run ./cmd/thermlint ./...        # lint the whole tree
//	go run ./cmd/thermlint -list        # describe the analyzers
//	go run ./cmd/thermlint -run determinism ./internal/loadgen
//
// Diagnostics print one per line as file:line:col: analyzer: message.
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage error —
// the same contract as go vet, so CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"thermalherd/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: thermlint [-list] [-run analyzers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "thermlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "thermlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
