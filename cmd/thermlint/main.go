// Command thermlint runs the repo's project-specific static analyzers
// (internal/analysis) over the packages matching its arguments:
//
//	go run ./cmd/thermlint ./...                 # lint the whole tree
//	go run ./cmd/thermlint -list                 # describe the analyzers
//	go run ./cmd/thermlint -run determinism ./internal/loadgen
//	go run ./cmd/thermlint -fix ./...            # apply suggested fixes
//	go run ./cmd/thermlint -format sarif -out thermlint.sarif ./...
//	go run ./cmd/thermlint -cache-dir .thermlint-cache -stats ./...
//
// Diagnostics print one per line as file:line:col: analyzer: message
// (-format json|sarif renders machine-readable reports instead; -out
// writes the report to a file while keeping findings on stdout's exit
// contract). The analysis cache makes warm runs cheap: point -cache-dir
// (or THERMLINT_CACHE) at a directory and unchanged packages replay
// their cached diagnostics and facts without being type-checked.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage error —
// the same contract as go vet, so CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"thermalherd/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source, then re-run")
	format := flag.String("format", "text", "report format: text, json, or sarif")
	out := flag.String("out", "", "write the formatted report to this file (default stdout)")
	cacheDir := flag.String("cache-dir", os.Getenv("THERMLINT_CACHE"), "analysis cache directory (default $THERMLINT_CACHE; empty disables)")
	noCache := flag.Bool("no-cache", false, "disable the analysis cache even when -cache-dir is set")
	stats := flag.Bool("stats", false, "print per-run cache statistics to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: thermlint [-list] [-run analyzers] [-fix] [-format text|json|sarif] [-out file] [-cache-dir dir] [-no-cache] [-stats] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "thermlint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}
	if *noCache {
		*cacheDir = ""
	}

	cfg := analysis.RunConfig{Patterns: flag.Args(), Analyzers: analyzers, CacheDir: *cacheDir}
	res, err := analysis.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermlint: %v\n", err)
		os.Exit(2)
	}
	if *fix {
		applied, err := analysis.ApplyFixes(res.Diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "thermlint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "thermlint: applied fixes for %d finding(s)\n", applied)
		// Fixed packages have new content hashes, so the re-run below
		// re-analyzes exactly them; surviving findings report normally.
		if res, err = analysis.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "thermlint: %v\n", err)
			os.Exit(2)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "thermlint: %d/%d package(s) from cache\n", res.Hits(), len(res.Pkgs))
	}

	diags := res.Diags
	var report []byte
	switch *format {
	case "text":
		var sb strings.Builder
		for _, d := range diags {
			fmt.Fprintln(&sb, d)
		}
		report = []byte(sb.String())
	case "json":
		if report, err = analysis.FormatJSON(diags); err == nil {
			report = append(report, '\n')
		}
	case "sarif":
		if report, err = analysis.FormatSARIF(diags, analyzers); err == nil {
			report = append(report, '\n')
		}
	default:
		fmt.Fprintf(os.Stderr, "thermlint: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "thermlint: %v\n", err)
		os.Exit(2)
	}
	if *out != "" {
		if err := os.WriteFile(*out, report, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "thermlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(report)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "thermlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
