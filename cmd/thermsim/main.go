// Command thermsim runs the cycle-level Thermal Herding simulator on one
// workload under one machine configuration and reports performance,
// power, herding, and thermal results.
//
// Usage:
//
//	thermsim -workload mpeg2enc -config 3D [-ff 6000000] [-warm 200000]
//	         [-measure 200000] [-thermal] [-map]
//
// Configurations: Base, TH, Pipe, Fast, 3D, 3D-noTH.
package main

import (
	"flag"
	"fmt"
	"os"

	"thermalherd/internal/config"
	"thermalherd/internal/cpu"
	"thermalherd/internal/floorplan"
	"thermalherd/internal/power"
	"thermalherd/internal/thermal"
	"thermalherd/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "mpeg2enc", "workload name (see cmd/benchgen -list)")
		cfgName   = flag.String("config", "3D", "machine configuration: Base, TH, Pipe, Fast, 3D, 3D-noTH")
		ff        = flag.Uint64("ff", 6_000_000, "fast-forward instructions (functional warming)")
		warm      = flag.Uint64("warm", 200_000, "cycle-level warmup instructions")
		measure   = flag.Uint64("measure", 200_000, "measured instructions")
		doThermal = flag.Bool("thermal", false, "also run the power and thermal models")
		doMap     = flag.Bool("map", false, "print ASCII heat maps (implies -thermal)")
	)
	flag.Parse()
	if *doMap {
		*doThermal = true
	}
	if err := run(*workload, *cfgName, *ff, *warm, *measure, *doThermal, *doMap); err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
}

func configByName(name string) (config.Machine, error) {
	return config.ByName(name)
}

func run(workload, cfgName string, ff, warm, measure uint64, doThermal, doMap bool) error {
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		return err
	}
	cfg, err := configByName(cfgName)
	if err != nil {
		return err
	}
	c, err := cpu.New(cfg, trace.NewGenerator(prof))
	if err != nil {
		return err
	}
	c.FastForward(ff)
	c.Warmup(warm)
	s := c.Run(measure)

	fmt.Printf("workload %s (%s) on %s @ %.2f GHz\n", prof.Name, prof.Group, cfg.Name, cfg.ClockGHz)
	fmt.Printf("  insts %d  cycles %d  IPC %.3f  IPns %.3f\n", s.Insts, s.Cycles, s.IPC(), s.IPns(cfg.ClockGHz))
	fmt.Printf("  branch: count %d  mispredict %.2f%%  dir-acc %.3f  BTB hit %.3f\n",
		s.BranchCount, 100*float64(s.BranchMispred)/float64(max(s.BranchCount, 1)),
		s.DirAccuracy, s.BTBHitRate)
	fmt.Printf("  memory: L1D miss %.3f  L2 miss %.3f  DRAM accesses %d\n",
		s.L1DMissRate, s.L2MissRate, s.DRAMAccesses)
	if cfg.ThermalHerding {
		fmt.Printf("  width:  accuracy %.3f  unsafe %.4f  RF stalls %d  ALU stalls %d  re-exec %d  D$ unsafe %d\n",
			s.WidthAccuracy, s.WidthUnsafeRate, s.RFGroupStalls, s.ALUInputStalls, s.ALUReexecutes, s.DCacheUnsafe)
		fmt.Printf("  herd:   PAM hit %.3f  RS top-die %.3f  bcast dies %.2f  PV low %.3f (zeros-only %.3f)\n",
			s.PAMHitRate, s.RSTopDieShare, s.MeanBroadcastDie, s.PV.LowFraction(), s.PV.ZeroOnlyFraction())
		fmt.Printf("  intexec top-die share %.3f  dcache top-die share %.3f\n",
			s.BlockDie[floorplan.BlkIntExec].TopDieShare(),
			s.BlockDie[floorplan.BlkDCache].TopDieShare())
	}

	if !doThermal {
		return nil
	}
	fp := floorplan.Planar()
	if cfg.ThreeD {
		fp = floorplan.Stacked()
	}
	b, err := power.Compute(cfg, s, fp)
	if err != nil {
		return err
	}
	fmt.Printf("  power:  dynamic %.1f W  clock %.1f W  leakage %.1f W  total %.1f W\n",
		b.DynamicW, b.ClockW, b.LeakageW, b.TotalW)

	watts := func(u floorplan.Unit) float64 {
		return b.UnitW[power.UnitKey{Block: u.Block, Core: u.Core, Die: u.Die}]
	}
	var stack *thermal.Stack
	if cfg.ThreeD {
		stack, err = thermal.BuildStacked(fp, watts, thermal.DefaultGrid, thermal.DefaultGrid)
	} else {
		stack, err = thermal.BuildPlanar(fp, watts, thermal.DefaultGrid, thermal.DefaultGrid)
	}
	if err != nil {
		return err
	}
	sol, err := stack.Solve()
	if err != nil {
		return err
	}
	peak, layer, _, _ := sol.Peak()
	u, _, ok := thermal.HottestUnit(sol, fp)
	hot := "?"
	if ok {
		hot = fmt.Sprintf("%v (core %d, die %d)", u.Block, u.Core, u.Die)
	}
	fmt.Printf("  thermal: peak %.1f K in layer %s, hotspot %s\n", peak, stack.Layers[layer].Name, hot)
	if doMap {
		lo := thermal.AmbientK
		for d := 0; d < fp.NumDies; d++ {
			fmt.Println(sol.RenderLayer(thermal.DieLayerIndex(d), lo, peak))
		}
	}
	return nil
}
