package main

import "testing"

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"Base", "TH", "Pipe", "Fast", "3D", "3D-noTH"} {
		cfg, err := configByName(name)
		if err != nil {
			t.Errorf("configByName(%s): %v", name, err)
			continue
		}
		if cfg.Name != name {
			t.Errorf("configByName(%s).Name = %s", name, cfg.Name)
		}
	}
	if _, err := configByName("bogus"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	// A tiny end-to-end run through the CLI path, including the power
	// and thermal models.
	if err := run("adpcmenc", "3D", 50_000, 10_000, 20_000, true, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if err := run("nonesuch", "3D", 0, 0, 1000, false, false); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunRejectsUnknownConfig(t *testing.T) {
	if err := run("gzip", "frob", 0, 0, 1000, false, false); err == nil {
		t.Error("unknown config accepted")
	}
}
