package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestInspectWorkloadSmoke(t *testing.T) {
	if err := inspectWorkload("gzip", 20_000); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := inspectWorkload("nonesuch", 1000); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	if err := recordWorkload("adpcmenc", path, 10_000); err != nil {
		t.Fatalf("record: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 10_000 {
		t.Errorf("trace file suspiciously small: %d bytes", info.Size())
	}
	if err := replayTrace(path); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := replayTrace(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestFmtBytes(t *testing.T) {
	if fmtBytes(64<<10) != "64KB" || fmtBytes(8<<20) != "8MB" {
		t.Errorf("fmtBytes wrong: %s %s", fmtBytes(64<<10), fmtBytes(8<<20))
	}
}
