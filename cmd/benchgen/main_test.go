package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermalherd/internal/trace"
)

func TestInspectWorkloadSmoke(t *testing.T) {
	if err := inspectWorkload(io.Discard, "gzip", 20_000, false); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := inspectWorkload(io.Discard, "nonesuch", 1000, false); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestListJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := listWorkloads(&buf, true); err != nil {
		t.Fatal(err)
	}
	var docs []profileDoc
	if err := json.Unmarshal(buf.Bytes(), &docs); err != nil {
		t.Fatalf("-list -json is not valid JSON: %v", err)
	}
	if len(docs) != trace.SuiteSize {
		t.Fatalf("listed %d profiles, want %d", len(docs), trace.SuiteSize)
	}
	byName := map[string]profileDoc{}
	for _, d := range docs {
		if d.Name == "" || d.Group == "" || d.StaticInsts == 0 {
			t.Fatalf("incomplete profile doc: %+v", d)
		}
		byName[d.Name] = d
	}
	mcf, ok := byName["mcf"]
	if !ok || mcf.WorkingSetBytes == 0 || mcf.FracLoad <= 0 {
		t.Fatalf("mcf profile implausible: %+v", mcf)
	}
	// Every listed name must resolve back through the suite, since
	// thermload mix files reference profiles by these names.
	for name := range byName {
		if _, err := trace.ProfileByName(name); err != nil {
			t.Fatalf("listed name %q not resolvable: %v", name, err)
		}
	}
}

func TestListText(t *testing.T) {
	var buf bytes.Buffer
	if err := listWorkloads(&buf, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mcf") || !strings.Contains(buf.String(), "Workload") {
		t.Fatalf("text listing missing expected content:\n%.200s", buf.String())
	}
}

func TestInspectJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := inspectWorkload(&buf, "mcf", 20_000, true); err != nil {
		t.Fatal(err)
	}
	var doc inspection
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-inspect -json is not valid JSON: %v", err)
	}
	if doc.Profile.Name != "mcf" || doc.Sampled != 20_000 {
		t.Fatalf("wrong inspection header: %+v", doc.Profile)
	}
	total := 0.0
	for _, f := range doc.ClassMix {
		total += f
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("class mix fractions sum to %g, want ~1", total)
	}
	if doc.Measured.PAMHitRate <= 0 || doc.Measured.BranchTakenFrac <= 0 {
		t.Fatalf("implausible measured stats: %+v", doc.Measured)
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	if err := recordWorkload("adpcmenc", path, 10_000); err != nil {
		t.Fatalf("record: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 10_000 {
		t.Errorf("trace file suspiciously small: %d bytes", info.Size())
	}
	if err := replayTrace(path); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := replayTrace(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestFmtBytes(t *testing.T) {
	if fmtBytes(64<<10) != "64KB" || fmtBytes(8<<20) != "8MB" {
		t.Errorf("fmtBytes wrong: %s %s", fmtBytes(64<<10), fmtBytes(8<<20))
	}
}
