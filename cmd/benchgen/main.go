// Command benchgen lists and inspects the 106 synthetic workloads that
// stand in for the paper's application traces: their profile parameters
// and measured stream characteristics (instruction mix, value widths,
// branch behaviour, address locality).
//
// Usage:
//
//	benchgen -list
//	benchgen -inspect mcf [-n 200000]
//	benchgen -record mcf -out mcf.trace [-n 200000]
//	benchgen -replay mcf.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"thermalherd/internal/core"
	"thermalherd/internal/isa"
	"thermalherd/internal/stats"
	"thermalherd/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list all workloads")
		inspect = flag.String("inspect", "", "inspect one workload's generated stream")
		n       = flag.Int("n", 200_000, "instructions to sample/record")
		record  = flag.String("record", "", "record a workload's stream to -out")
		out     = flag.String("out", "workload.trace", "output file for -record")
		replay  = flag.String("replay", "", "summarize a recorded trace file")
	)
	flag.Parse()
	var err error
	switch {
	case *list:
		listWorkloads()
	case *inspect != "":
		err = inspectWorkload(*inspect, *n)
	case *record != "":
		err = recordWorkload(*record, *out, *n)
	case *replay != "":
		err = replayTrace(*replay)
	default:
		flag.Usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func listWorkloads() {
	t := stats.NewTable("Workload", "Group", "WS", "Hot", "LowW", "Ptr", "Hard", "Static")
	for _, p := range trace.Suite() {
		t.AddRow(p.Name, p.Group.String(),
			fmtBytes(p.WorkingSet),
			fmt.Sprintf("%.2f", p.HotFrac),
			fmt.Sprintf("%.2f", p.LowWidthStaticFrac),
			fmt.Sprintf("%.2f", p.PtrLoadFrac),
			fmt.Sprintf("%.2f", p.HardBranchFrac),
			fmt.Sprintf("%d", p.StaticInsts))
	}
	fmt.Print(t)
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}

func inspectWorkload(name string, n int) error {
	p, err := trace.ProfileByName(name)
	if err != nil {
		return err
	}
	g := trace.NewGenerator(p)
	classCount := map[isa.Class]int{}
	var intResults, lowResults int
	var pv core.PVStats
	memo := core.NewAddressMemo()
	var branches, taken int
	for i := 0; i < n; i++ {
		in, _ := g.Next()
		classCount[in.Class]++
		if in.HasIntDest() && in.Class != isa.ClassJump {
			intResults++
			if core.IsLowWidth(in.Result) {
				lowResults++
			}
		}
		if in.Class == isa.ClassLoad {
			pv.Observe(core.ClassifyPartialValue(in.Result, in.MemAddr))
		}
		if in.IsMem() {
			memo.Broadcast(in.MemAddr, in.Class == isa.ClassStore)
		}
		if in.Class == isa.ClassBranch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	fmt.Printf("%s (%s): %d instructions sampled\n", p.Name, p.Group, n)
	t := stats.NewTable("Class", "Count", "Fraction")
	for _, c := range []isa.Class{isa.ClassALU, isa.ClassShift, isa.ClassMulDiv,
		isa.ClassLoad, isa.ClassStore, isa.ClassBranch, isa.ClassJump,
		isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv} {
		t.AddRow(c.String(), fmt.Sprintf("%d", classCount[c]),
			fmt.Sprintf("%.3f", float64(classCount[c])/float64(n)))
	}
	fmt.Print(t)
	fmt.Printf("low-width results: %.3f of %d int results\n",
		float64(lowResults)/float64(max(intResults, 1)), intResults)
	fmt.Printf("load partial values: low %.3f (zeros-only %.3f, PVAddr %.3f)\n",
		pv.LowFraction(), pv.ZeroOnlyFraction(),
		float64(pv.Counts[core.PVAddr])/float64(max(pv.Total(), 1)))
	fmt.Printf("PAM hit rate: %.3f over %d broadcasts\n", memo.HitRate(), memo.Broadcasts())
	fmt.Printf("branches: %d, taken %.3f\n", branches, float64(taken)/float64(max(branches, 1)))
	return nil
}

func recordWorkload(name, path string, n int) error {
	p, err := trace.ProfileByName(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	written, err := trace.Write(f, trace.NewGenerator(p), n)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", written, name, path)
	return nil
}

func replayTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	classCount := map[isa.Class]int{}
	n := 0
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		classCount[in.Class]++
		n++
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions\n", path, n)
	for _, c := range []isa.Class{isa.ClassALU, isa.ClassLoad, isa.ClassStore, isa.ClassBranch, isa.ClassJump} {
		fmt.Printf("  %-7s %d\n", c, classCount[c])
	}
	return nil
}

func max[T int | uint64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
