// Command benchgen lists and inspects the 106 synthetic workloads that
// stand in for the paper's application traces: their profile parameters
// and measured stream characteristics (instruction mix, value widths,
// branch behaviour, address locality).
//
// Usage:
//
//	benchgen -list [-json]
//	benchgen -inspect mcf [-n 200000] [-json]
//	benchgen -record mcf -out mcf.trace [-n 200000]
//	benchgen -replay mcf.trace
//
// With -json, -list and -inspect emit machine-readable profile
// documents that thermload mix files (see examples/mixes) can
// reference by workload name.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"thermalherd/internal/core"
	"thermalherd/internal/isa"
	"thermalherd/internal/stats"
	"thermalherd/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list all workloads")
		inspect = flag.String("inspect", "", "inspect one workload's generated stream")
		n       = flag.Int("n", 200_000, "instructions to sample/record")
		record  = flag.String("record", "", "record a workload's stream to -out")
		out     = flag.String("out", "workload.trace", "output file for -record")
		replay  = flag.String("replay", "", "summarize a recorded trace file")
		asJSON  = flag.Bool("json", false, "emit -list/-inspect output as JSON")
	)
	flag.Parse()
	var err error
	switch {
	case *list:
		err = listWorkloads(os.Stdout, *asJSON)
	case *inspect != "":
		err = inspectWorkload(os.Stdout, *inspect, *n, *asJSON)
	case *record != "":
		err = recordWorkload(*record, *out, *n)
	case *replay != "":
		err = replayTrace(*replay)
	default:
		flag.Usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

// profileDoc is the machine-readable form of one workload profile.
type profileDoc struct {
	Name               string  `json:"name"`
	Group              string  `json:"group"`
	WorkingSetBytes    uint64  `json:"working_set_bytes"`
	HotFrac            float64 `json:"hot_frac"`
	StackFrac          float64 `json:"stack_frac"`
	LowWidthStaticFrac float64 `json:"low_width_static_frac"`
	PtrLoadFrac        float64 `json:"ptr_load_frac"`
	NegValFrac         float64 `json:"neg_val_frac"`
	HardBranchFrac     float64 `json:"hard_branch_frac"`
	FarTargetFrac      float64 `json:"far_target_frac"`
	FracLoad           float64 `json:"frac_load"`
	FracStore          float64 `json:"frac_store"`
	FracBranch         float64 `json:"frac_branch"`
	FracJump           float64 `json:"frac_jump"`
	FracShift          float64 `json:"frac_shift"`
	FracMulDiv         float64 `json:"frac_muldiv"`
	FracFPAdd          float64 `json:"frac_fp_add"`
	FracFPMul          float64 `json:"frac_fp_mul"`
	FracFPDiv          float64 `json:"frac_fp_div"`
	DepDistMean        float64 `json:"dep_dist_mean"`
	StaticInsts        int     `json:"static_insts"`
}

func docOf(p trace.Profile) profileDoc {
	return profileDoc{
		Name:               p.Name,
		Group:              p.Group.String(),
		WorkingSetBytes:    p.WorkingSet,
		HotFrac:            p.HotFrac,
		StackFrac:          p.StackFrac,
		LowWidthStaticFrac: p.LowWidthStaticFrac,
		PtrLoadFrac:        p.PtrLoadFrac,
		NegValFrac:         p.NegValFrac,
		HardBranchFrac:     p.HardBranchFrac,
		FarTargetFrac:      p.FarTargetFrac,
		FracLoad:           p.FracLoad,
		FracStore:          p.FracStore,
		FracBranch:         p.FracBranch,
		FracJump:           p.FracJump,
		FracShift:          p.FracShift,
		FracMulDiv:         p.FracMulDiv,
		FracFPAdd:          p.FracFPAdd,
		FracFPMul:          p.FracFPMul,
		FracFPDiv:          p.FracFPDiv,
		DepDistMean:        p.DepDistMean,
		StaticInsts:        p.StaticInsts,
	}
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func listWorkloads(w io.Writer, asJSON bool) error {
	if asJSON {
		docs := make([]profileDoc, 0, trace.SuiteSize)
		for _, p := range trace.Suite() {
			docs = append(docs, docOf(p))
		}
		return writeJSON(w, docs)
	}
	t := stats.NewTable("Workload", "Group", "WS", "Hot", "LowW", "Ptr", "Hard", "Static")
	for _, p := range trace.Suite() {
		t.AddRow(p.Name, p.Group.String(),
			fmtBytes(p.WorkingSet),
			fmt.Sprintf("%.2f", p.HotFrac),
			fmt.Sprintf("%.2f", p.LowWidthStaticFrac),
			fmt.Sprintf("%.2f", p.PtrLoadFrac),
			fmt.Sprintf("%.2f", p.HardBranchFrac),
			fmt.Sprintf("%d", p.StaticInsts))
	}
	fmt.Fprint(w, t)
	return nil
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}

// inspection is the machine-readable -inspect -json document: the
// static profile plus characteristics measured from n generated
// instructions.
type inspection struct {
	Profile  profileDoc         `json:"profile"`
	Sampled  int                `json:"sampled_insts"`
	ClassMix map[string]float64 `json:"class_mix"`
	Measured struct {
		LowWidthResultFrac float64 `json:"low_width_result_frac"`
		LoadPVLowFrac      float64 `json:"load_pv_low_frac"`
		LoadPVZeroOnlyFrac float64 `json:"load_pv_zero_only_frac"`
		LoadPVAddrFrac     float64 `json:"load_pv_addr_frac"`
		PAMHitRate         float64 `json:"pam_hit_rate"`
		BranchTakenFrac    float64 `json:"branch_taken_frac"`
	} `json:"measured"`
}

func inspectWorkload(w io.Writer, name string, n int, asJSON bool) error {
	p, err := trace.ProfileByName(name)
	if err != nil {
		return err
	}
	g := trace.NewGenerator(p)
	classCount := map[isa.Class]int{}
	var intResults, lowResults int
	var pv core.PVStats
	memo := core.NewAddressMemo()
	var branches, taken int
	for i := 0; i < n; i++ {
		in, _ := g.Next()
		classCount[in.Class]++
		if in.HasIntDest() && in.Class != isa.ClassJump {
			intResults++
			if core.IsLowWidth(in.Result) {
				lowResults++
			}
		}
		if in.Class == isa.ClassLoad {
			pv.Observe(core.ClassifyPartialValue(in.Result, in.MemAddr))
		}
		if in.IsMem() {
			memo.Broadcast(in.MemAddr, in.Class == isa.ClassStore)
		}
		if in.Class == isa.ClassBranch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	if asJSON {
		doc := inspection{Profile: docOf(p), Sampled: n, ClassMix: map[string]float64{}}
		for c, cnt := range classCount {
			doc.ClassMix[c.String()] = float64(cnt) / float64(n)
		}
		doc.Measured.LowWidthResultFrac = float64(lowResults) / float64(max(intResults, 1))
		doc.Measured.LoadPVLowFrac = pv.LowFraction()
		doc.Measured.LoadPVZeroOnlyFrac = pv.ZeroOnlyFraction()
		doc.Measured.LoadPVAddrFrac = float64(pv.Counts[core.PVAddr]) / float64(max(pv.Total(), 1))
		doc.Measured.PAMHitRate = memo.HitRate()
		doc.Measured.BranchTakenFrac = float64(taken) / float64(max(branches, 1))
		return writeJSON(w, doc)
	}
	fmt.Fprintf(w, "%s (%s): %d instructions sampled\n", p.Name, p.Group, n)
	t := stats.NewTable("Class", "Count", "Fraction")
	for _, c := range []isa.Class{isa.ClassALU, isa.ClassShift, isa.ClassMulDiv,
		isa.ClassLoad, isa.ClassStore, isa.ClassBranch, isa.ClassJump,
		isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv} {
		t.AddRow(c.String(), fmt.Sprintf("%d", classCount[c]),
			fmt.Sprintf("%.3f", float64(classCount[c])/float64(n)))
	}
	fmt.Fprint(w, t)
	fmt.Fprintf(w, "low-width results: %.3f of %d int results\n",
		float64(lowResults)/float64(max(intResults, 1)), intResults)
	fmt.Fprintf(w, "load partial values: low %.3f (zeros-only %.3f, PVAddr %.3f)\n",
		pv.LowFraction(), pv.ZeroOnlyFraction(),
		float64(pv.Counts[core.PVAddr])/float64(max(pv.Total(), 1)))
	fmt.Fprintf(w, "PAM hit rate: %.3f over %d broadcasts\n", memo.HitRate(), memo.Broadcasts())
	fmt.Fprintf(w, "branches: %d, taken %.3f\n", branches, float64(taken)/float64(max(branches, 1)))
	return nil
}

func recordWorkload(name, path string, n int) error {
	p, err := trace.ProfileByName(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	written, err := trace.Write(f, trace.NewGenerator(p), n)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", written, name, path)
	return nil
}

func replayTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	classCount := map[isa.Class]int{}
	n := 0
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		classCount[in.Class]++
		n++
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions\n", path, n)
	for _, c := range []isa.Class{isa.ClassALU, isa.ClassLoad, isa.ClassStore, isa.ClassBranch, isa.ClassJump} {
		fmt.Printf("  %-7s %d\n", c, classCount[c])
	}
	return nil
}

func max[T int | uint64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
