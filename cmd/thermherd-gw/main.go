// Command thermherd-gw is the herd front door: it turns N thermherdd
// backends into one logical service by consistent-hashing each job's
// canonical spec hash across them, so identical specs always land on
// the same node and its result cache and idempotency dedup keep
// working at fleet scale.
//
// Usage:
//
//	thermherd-gw -backends n0=http://h0:8077,n1=http://h1:8077,n2=http://h2:8077
//	             [-addr :8070] [-vnodes 64]
//	             [-probe-interval 1s] [-probe-timeout 500ms] [-fail-threshold 3]
//	             [-scatter-timeout 2s] [-faults SPEC] [-fault-seed 1]
//
// The gateway serves the same API as one thermherdd node. Job ids it
// returns are namespaced "<id>@<node>"; status, result, and cancel
// requests carrying such an id route straight to the minting backend
// with no gateway-side state. GET /v1/jobs and /metrics scatter-gather
// every backend under -scatter-timeout and mark the merged document
// "partial" when a backend fails to answer.
//
// Membership is probe-driven: each backend's /readyz is polled every
// -probe-interval, and its structured reason ejects (draining,
// recovering, down after -fail-threshold consecutive failures) or
// deprioritizes (brownout) the node. A browning-out node still serves
// the specs it has cached; cold specs spill to the less-loaded of two
// healthy peers. A backend flapping between healthy and down is held
// "suspect" for a cooldown instead of re-entering rotation on every
// good probe. -faults arms the gateway's chaos points (gw.forward,
// gw.probe, gw.splitbrain, gw.straggler, gw.hedge, gw.breaker,
// gw.admin); never arm faults on a gateway doing real work.
//
// Resilience knobs:
//
//   - -hedge enables request hedging: idempotent reads and
//     Idempotency-Key-bearing submits get a second attempt after the
//     per-route-class p95 delay (clamped into [-hedge-min, -hedge-max]);
//     the first reply wins and the loser is cancelled or reaped.
//   - -retry-budget / -retry-burst bound retry+hedge amplification to
//     ~budget of base traffic (a Finagle-style token bucket).
//   - -breaker-threshold / -breaker-cooldown tune the per-backend
//     circuit breakers fed by forward and probe outcomes.
//   - -admin-token (or $THERMHERD_ADMIN_TOKEN) enables the authenticated
//     live-membership API: POST/GET /v1/admin/nodes, POST
//     /v1/admin/nodes/{name}/drain, DELETE /v1/admin/nodes/{name}.
//     Without a token the admin API answers 403.
//   - -takeover-after arms failover (repl.takeover): a backend down
//     that long is adopted by its ring successor — the successor
//     replays the replica journal the dead node streamed to it (see
//     thermherdd -repl), an alias keeps the dead node's job ids
//     resolving, and the corpse leaves the ring. Drains become
//     proactive: queued jobs migrate to the successor immediately,
//     and DELETE ?force=1 adopts before removing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thermalherd/internal/faultinject"
	"thermalherd/internal/gateway"
)

// parseBackends decodes the -backends flag: comma-separated
// name=baseURL pairs.
func parseBackends(spec string) ([]gateway.Backend, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("no backends configured (want -backends n0=http://host:port,...)")
	}
	var out []gateway.Backend
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad backend %q (want name=baseURL)", part)
		}
		out = append(out, gateway.Backend{Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends configured (want -backends n0=http://host:port,...)")
	}
	return out, nil
}

func main() {
	var (
		addr          = flag.String("addr", ":8070", "listen address")
		backendsSpec  = flag.String("backends", "", "comma-separated name=baseURL backend list (required)")
		vnodes        = flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per backend on the hash ring")
		probeInterval = flag.Duration("probe-interval", time.Second, "membership /readyz probe interval")
		probeTimeout  = flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe timeout")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive probe failures before a backend is ejected")
		scatterTO     = flag.Duration("scatter-timeout", 2*time.Second, "per-backend timeout for scatter-gather reads")
		faults        = flag.String("faults", os.Getenv("THERMHERD_FAULTS"), "fault-injection spec (chaos testing only); defaults to $THERMHERD_FAULTS")
		faultSeed     = flag.Int64("fault-seed", 1, "seed for fault-injection firing decisions")

		hedge       = flag.Bool("hedge", false, "hedge idempotent reads and keyed submits after the per-class p95 delay")
		hedgeMin    = flag.Duration("hedge-min", 5*time.Millisecond, "lower clamp on the hedge delay")
		hedgeMax    = flag.Duration("hedge-max", 100*time.Millisecond, "upper clamp on the hedge delay")
		retryBudget = flag.Float64("retry-budget", 0.1, "retry+hedge tokens deposited per base request")
		retryBurst  = flag.Float64("retry-burst", 10, "retry-budget bucket capacity")
		brkThresh   = flag.Int("breaker-threshold", 5, "consecutive failures that open a backend's circuit")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open circuit waits before a half-open trial")
		adminToken  = flag.String("admin-token", os.Getenv("THERMHERD_ADMIN_TOKEN"), "bearer token for the /v1/admin/nodes API; empty disables it; defaults to $THERMHERD_ADMIN_TOKEN")

		takeoverAfter = flag.Duration("takeover-after", 0, "adopt a backend dead this long onto its ring successor (0 = takeover disabled; requires backends running -repl)")
	)
	flag.Parse()

	backends, err := parseBackends(*backendsSpec)
	if err != nil {
		log.Fatalf("thermherd-gw: %v", err)
	}
	cfg := gateway.Config{
		Backends:         backends,
		VNodes:           *vnodes,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		FailThreshold:    *failThreshold,
		ScatterTimeout:   *scatterTO,
		Hedge:            *hedge,
		HedgeMin:         *hedgeMin,
		HedgeMax:         *hedgeMax,
		RetryBudgetRatio: *retryBudget,
		RetryBudgetBurst: *retryBurst,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		AdminToken:       *adminToken,
		TakeoverAfter:    *takeoverAfter,
	}
	if *faults != "" {
		reg := faultinject.New()
		if err := reg.Arm(*faults, *faultSeed); err != nil {
			log.Fatalf("thermherd-gw: %v", err)
		}
		cfg.Faults = reg
		log.Printf("thermherd-gw: CHAOS MODE: fault points armed (seed %d): %s",
			*faultSeed, strings.Join(reg.Points(), ", "))
	}

	gw, err := gateway.New(cfg)
	if err != nil {
		log.Fatalf("thermherd-gw: %v", err)
	}
	gw.Start()
	defer gw.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("thermherd-gw: %v", err)
	}
	hs := &http.Server{Handler: gw}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name
	}
	log.Printf("thermherd-gw: listening on %s, herding %d backends (%s)",
		ln.Addr(), len(backends), strings.Join(names, ", "))
	if *hedge {
		log.Printf("thermherd-gw: hedging enabled (delay clamp %v..%v, retry budget %.2f burst %.0f)",
			*hedgeMin, *hedgeMax, *retryBudget, *retryBurst)
	}
	if *adminToken != "" {
		log.Printf("thermherd-gw: admin API enabled on /v1/admin/nodes")
	}
	if *takeoverAfter > 0 {
		log.Printf("thermherd-gw: failover armed: takeover after %v down, drains migrate queued jobs", *takeoverAfter)
	}

	select {
	case err := <-errc:
		log.Fatalf("thermherd-gw: %v", err)
	case <-ctx.Done():
	}

	log.Printf("thermherd-gw: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
	}
	log.Printf("thermherd-gw: stopped")
}
