// Command repro regenerates every table and figure of the paper's
// evaluation section and prints them alongside the paper's reported
// values. This is the one-shot reproduction driver; expect it to run for
// several minutes at the default simulation depth.
//
// Usage:
//
//	repro [-quick] [-parallel n]
//	      [-only table1|table2|fig8|fig9|fig10|density|width|extensions|ablations]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"thermalherd/internal/config"
	"thermalherd/internal/experiments"
	"thermalherd/internal/viz"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use shallow simulation depths (fast, less faithful)")
		only     = flag.String("only", "", "run only one experiment: table1, table2, fig8, fig9, fig10, density, width, extensions, ablations")
		parallel = flag.Int("parallel", 0, "max concurrent workload simulations (0 = THERMALHERD_PARALLEL or NumCPU)")
	)
	flag.Parse()
	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *parallel > 0 {
		opts.Parallelism = *parallel
	}
	r := experiments.NewRunner(opts)
	want := func(name string) bool { return *only == "" || *only == name }
	start := time.Now()
	var failed bool
	runSection := func(name string, f func() error) {
		if !want(name) {
			return
		}
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Printf("[%s done in %s]\n\n", name, time.Since(t0).Round(time.Second))
	}

	runSection("table1", func() error {
		header("Table 1: baseline machine parameters")
		fmt.Print(experiments.Table1())
		return nil
	})

	runSection("table2", func() error {
		header("Table 2: block latencies, 2D vs 3D (paper: wakeup-select -32%, ALU+bypass -36%, clock +47.9%)")
		fmt.Print(experiments.Table2())
		return nil
	})

	runSection("fig8", func() error {
		header("Figure 8: performance (paper: 3D speedup 7%..77%, mean +47.0%; SPECfp +29.5%, others 49.4-51.5%)")
		f, err := experiments.Figure8(r)
		if err != nil {
			return err
		}
		fmt.Println("(a) geometric-mean IPC per group:")
		fmt.Print(f.Render("ipc"))
		fmt.Println("\n(b) instructions per nanosecond:")
		fmt.Print(f.Render("ipns"))
		fmt.Println("\n(c) speedup over Base:")
		fmt.Print(f.Render("speedup"))
		minN, minV, maxN, maxV := f.MinMaxSpeedup()
		fmt.Printf("\nmin speedup %s %+.1f%% (paper: mcf +7%%)   max %s %+.1f%% (paper: patricia +77%%)\n",
			minN, 100*(minV-1), maxN, 100*(maxV-1))
		fmt.Printf("mean-of-means 3D speedup: %+.1f%% (paper: +47.0%%)\n", 100*(f.MoMSpeedup["3D"]-1))
		fmt.Println()
		fmt.Print(viz.GroupedBars("3D speedup by group (bar view):", f.Groups, []string{"3D"},
			func(g, s string) float64 { return f.Speedup[g][s] }, 40))
		return nil
	})

	runSection("fig9", func() error {
		header("Figure 9: power (paper: 90 W -> 72.7 W -> 64.3 W; savings 15% yacr2 .. 30% susan)")
		f, err := experiments.Figure9(r)
		if err != nil {
			return err
		}
		fmt.Print(f.Render())
		fmt.Printf("\nper-benchmark 3D-TH savings: min %s %.1f%%  max %s %.1f%%\n",
			f.MinBench, 100*f.MinSaving, f.MaxBench, 100*f.MaxSaving)
		return nil
	})

	runSection("fig10", func() error {
		header("Figure 10: thermals (paper: 360 K planar / 377 K 3D / 372 K 3D+TH; hotspot RS -> D-cache)")
		f, err := experiments.Figure10(r, "mpeg2enc")
		if err != nil {
			return err
		}
		fmt.Println("(a-c) worst case across the suite:")
		fmt.Print(f.Render())
		fmt.Printf("\n(d-f) same application (%s):\n", f.SameAppName)
		for _, name := range []string{"Base", "3D-noTH", "3D"} {
			p := f.SameApp[name]
			fmt.Printf("  %-8s peak %.1f K  hotspot %-8s  ROB peak %.1f K\n",
				name, p.PeakK, p.Hotspot, f.ROBPeak[name])
		}
		return nil
	})

	runSection("density", func() error {
		header("Section 5.3 density study (paper: same 90 W in the stack -> 418 K, +58 K)")
		planar, density, err := experiments.DensityStudy(r, "mpeg2enc")
		if err != nil {
			return err
		}
		fmt.Printf("planar peak %.1f K -> 4x-density stack peak %.1f K (+%.1f K)\n",
			planar, density, density-planar)
		return nil
	})

	runSection("width", func() error {
		header("Section 3.8 width prediction accuracy (paper: 97%)")
		wa, err := experiments.WidthAccuracy(r)
		if err != nil {
			return err
		}
		fmt.Printf("suite-wide width prediction accuracy: %.1f%%\n", 100*wa)
		return nil
	})

	runSection("extensions", func() error {
		header("Extensions: perf-to-power conversion, mixed pairs, width census, transient")
		pts, ref, err := experiments.PerfToPower(r, "susan_s", 5)
		if err != nil {
			return err
		}
		fmt.Println("3D frequency sweep (converting performance into power/thermal headroom):")
		fmt.Print(experiments.RenderPerfToPower(pts, ref))
		mixed, err := experiments.MixedPair(r, config.ThreeD(), "susan_s", "yacr2")
		if err != nil {
			return err
		}
		fmt.Printf("\nheterogeneous pair susan_s+yacr2 on 3D: %.1f W, peak %.1f K (hotspot %s, core %d)\n",
			mixed.TotalW, mixed.PeakK, mixed.Hotspot, mixed.HotCore)
		census, err := experiments.ValueWidthCensus(r)
		if err != nil {
			return err
		}
		fmt.Println("\nvalue-width census per group (Section 3 premise):")
		fmt.Print(census)
		tr, err := experiments.ThermalTransient(r, "mpeg2enc", 30.0)
		if err != nil {
			return err
		}
		fmt.Printf("\nthermal transient (mpeg2enc, 3D): peak %.1f K after %.0f s; settles (±1 K) in %.1f s\n",
			tr.PeakK[len(tr.PeakK)-1], tr.TimesS[len(tr.TimesS)-1], tr.TimeToWithin(1.0))
		fmt.Print(viz.Series("  peak(t)", tr.PeakK, true))
		lf, err := experiments.LeakageFeedback(r, config.ThreeD(), "mpeg2enc")
		if err != nil {
			return err
		}
		fmt.Printf("leakage-temperature feedback (mpeg2enc, 3D): %s\n", lf)
		return nil
	})

	runSection("ablations", func() error {
		header("Ablations (DESIGN.md)")
		wp, err := experiments.AblationWidthPolicy(r, "mpeg2enc")
		if err != nil {
			return err
		}
		fmt.Println("width prediction policy (mpeg2enc, 3D):")
		fmt.Print(wp)
		al, err := experiments.AblationAllocator(r, "mpeg2enc")
		if err != nil {
			return err
		}
		fmt.Println("\nscheduler allocation policy (mpeg2enc, 3D):")
		fmt.Print(al)
		pv, err := experiments.AblationPVEncoding(r)
		if err != nil {
			return err
		}
		fmt.Println("\npartial value encoding coverage per group:")
		fmt.Print(pv)
		pam, err := experiments.AblationPAM(r)
		if err != nil {
			return err
		}
		fmt.Println("\npartial address memoization per group:")
		fmt.Print(pam)
		d2d, err := experiments.AblationD2DResistance(r, "mpeg2enc",
			[]float64{0.05, 0.10, 0.25, 0.50})
		if err != nil {
			return err
		}
		fmt.Println("\nd2d via-field Cu occupancy sweep (mpeg2enc, 3D):")
		fmt.Print(d2d)
		return nil
	})

	fmt.Printf("total time: %s\n", time.Since(start).Round(time.Second))
	if failed {
		os.Exit(1)
	}
}

func header(s string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", 72))
}
