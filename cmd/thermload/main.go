// Command thermload is an open-loop load generator and SLO benchmark
// harness for thermherdd. It synthesizes a deterministic
// request-arrival schedule, samples job specs from a weighted mix,
// fires them at a daemon with bounded in-flight concurrency, and
// writes a machine-readable BENCH_loadgen.json report (latency
// quantiles, achieved vs. offered RPS, error/drop counts, SLO
// verdict).
//
// Usage:
//
//	thermload -mode constant -rps 50 -duration 10s -seed 42
//	thermload -mode ramp -start 5 -target 25 -step 5 -slot 2s -seed 42
//	thermload -mode burst -rps 10 -burst-rps 100 -burst-every 2s -burst-len 500ms -duration 10s
//	thermload -mode poisson -rps 30 -duration 10s -seed 7
//
// Point it at a running daemon with -addr, or pass -selfhost to spin
// up an in-process daemon on a loopback port (used by the CI bench
// smoke job). Equal seeds and parameters reproduce byte-identical
// arrival schedules; dump one with -schedule-out to diff runs, or
// compare the schedule_sha256 fields of two reports.
//
// Chaos runs: -faults arms fault injection inside the self-hosted
// daemon (spec grammar in internal/faultinject; requires -selfhost so
// a shared daemon is never sabotaged), -job-timeout/-stuck-after/
// -brownout mirror the daemon's resilience knobs, and -chaos appends a
// post-run check that the daemon survived, every submitted job reached
// a terminal state, and the /metrics accounting identity holds:
//
//	thermload -selfhost -chaos -faults 'job.exec=panic:chaos,p:0.05' \
//	          -stuck-after 5s -mode constant -rps 50 -duration 5s -seed 42
//
// Herd runs: -nodes N (with -selfhost) spins up N in-process daemons
// behind an in-process thermherd-gw gateway and drives the load
// through the gateway, so sharded routing, failover, and fleet-wide
// accounting are exercised in one process. The selfhost.backend.kill
// fault point schedules a mid-run backend kill (the node drains
// abruptly but keeps serving reads, exactly like a SIGTERM'd daemon):
//
//	thermload -selfhost -nodes 3 -chaos \
//	          -faults 'selfhost.backend.kill=error:kill,count:1,delay:2s' \
//	          -mode constant -rps 50 -duration 5s -seed 42
//
// The selfhost.backend.join and selfhost.backend.drain points resize
// the herd mid-run through the gateway's authenticated admin API: join
// starts an extra backend that probes to healthy and takes its
// deterministic ring shard live, drain pins the last backend draining
// while its admitted jobs settle. -hedge enables gateway request
// hedging (second attempt after the per-class p95 delay, bounded by a
// retry budget) so a straggling backend stops owning the tail:
//
//	thermload -selfhost -nodes 3 -hedge -chaos \
//	          -faults 'gw.straggler=delay:250ms' \
//	          -mode constant -rps 40 -duration 5s -seed 42
//	thermload -selfhost -nodes 3 -chaos \
//	          -faults 'selfhost.backend.join=error:join,count:1,delay:2s' \
//	          -mode constant -rps 40 -duration 5s -seed 42
//
// Failover runs: -repl none|async|sync (with -selfhost -nodes >= 2)
// chains each backend's journal to its ring successor, arms the
// gateway's takeover machinery, and appends a post-run reconciliation
// that re-polls every acked job id to a terminal state — the
// fleet-wide zero-acked-loss audit. The selfhost.backend.kill9 point
// is the hard variant of kill: the victim's listener and connections
// are torn down instantly and its replication stream goes silent, the
// wire behavior of a kill -9. Under -repl sync the successor adopts
// the dead node's replica journal and no acked job is lost; under
// -repl none the same kill measurably loses the victim's backlog:
//
//	thermload -selfhost -nodes 3 -repl sync -chaos \
//	          -faults 'selfhost.backend.kill9=error:kill9,count:1,delay:2s' \
//	          -mode constant -rps 40 -duration 6s -seed 42
//
// Multi-tenant QoS runs: -tenants N attributes unpinned arrivals to N
// synthetic tenants t1..tN (Zipf-ish weights), mix entries may pin a
// tenant of their own (see examples/mixes/multitenant.json), and
// -tenant-p99 'live=500ms' adds per-tenant tail-latency SLO clauses —
// a listed tenant that completes nothing is a violation, which is how
// the starvation demo detects a drowned short-job tenant. With
// -selfhost, -sched qos (plus -short-budget, -short-reserve,
// -tenant-rate, -tenant-burst, -tenant-weights) starts the daemon
// under the QoS scheduler, so one command compares FIFO against QoS:
//
//	thermload -selfhost -mix examples/mixes/multitenant.json \
//	          -tenant-p99 'live=1s' -mode constant -rps 40 -duration 10s -seed 42
//	thermload -selfhost -sched qos -short-reserve 2 -mix examples/mixes/multitenant.json \
//	          -tenant-p99 'live=1s' -mode constant -rps 40 -duration 10s -seed 42
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"thermalherd/internal/faultinject"
	"thermalherd/internal/gateway"
	"thermalherd/internal/loadgen"
	"thermalherd/internal/replication"
	"thermalherd/internal/server"
)

// Fault points owned by the self-host harness itself (as opposed to
// the daemon- and gateway-side points armed through the same -faults
// spec).
//
//thermlint:faultpoints
const (
	// faultBackendKill fires from the herd kill-watcher: an error action
	// kills one self-hosted backend mid-run (abrupt drain, HTTP kept up
	// for reads), a delay action schedules when. Only meaningful with
	// -selfhost -nodes N.
	faultBackendKill = "selfhost.backend.kill"
	// faultBackendJoin fires from the herd join-watcher: an error action
	// starts one extra self-hosted backend mid-run and adds it through
	// the gateway's admin API, so it probes to healthy and takes its
	// deterministic ring shard without a restart. A delay action
	// schedules when. Only meaningful with -selfhost -nodes N.
	faultBackendJoin = "selfhost.backend.join"
	// faultBackendDrain fires from the herd drain-watcher: an error
	// action pins the LAST backend draining through the gateway's admin
	// API mid-run — new placements fail over, existing jobs keep
	// settling, and the node is deliberately NOT deleted so the
	// fleet-wide accounting still sees its jobs. A delay action
	// schedules when. Only meaningful with -selfhost -nodes N.
	faultBackendDrain = "selfhost.backend.drain"
	// faultBackendKill9 fires from the herd kill9-watcher: an error
	// action kills the LAST backend the hard way — its listener and
	// in-flight connections are torn down instantly, its replication
	// stream goes silent, and nothing drains — the wire behavior of a
	// kill -9. With -repl armed the gateway's takeover adopts the
	// victim's replica journal onto its ring successor; the post-run
	// reconciliation then measures exactly what the ack policy
	// promised. A delay action schedules when. Only meaningful with
	// -selfhost -nodes N.
	faultBackendKill9 = "selfhost.backend.kill9"
)

// selfhostAdminToken authorizes the in-process gateway's admin API for
// the join/drain watchers; the herd lives and dies inside one process,
// so a fixed token costs nothing.
const selfhostAdminToken = "selfhost-admin"

// options collects every flag so tests can drive the same paths main
// does.
type options struct {
	addr     string
	selfhost bool
	nodes    int

	sched loadgen.ScheduleConfig

	mixPath  string
	inflight int
	timeout  time.Duration
	poll     time.Duration
	retries  int
	backoff  time.Duration
	batch    int
	tenants  int

	sloP95    time.Duration
	sloP99    time.Duration
	sloErrors float64
	tenantP99 string

	schedPolicy   string
	shortBudget   time.Duration
	shortReserve  int
	tenantRate    float64
	tenantBurst   int
	tenantWeights string

	faults     string
	faultSeed  int64
	cacheSize  int
	jobTimeout time.Duration
	stuckAfter time.Duration
	brownout   time.Duration
	chaos      bool
	hedge      bool
	repl       string

	out         string
	scheduleOut string
	dryRun      bool
	strict      bool

	statePath string
	resume    bool
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("thermload", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "http://localhost:8077", "thermherdd base URL")
	fs.BoolVar(&o.selfhost, "selfhost", false, "run an in-process daemon on a loopback port instead of targeting -addr")
	fs.IntVar(&o.nodes, "nodes", 1, "with -selfhost: run this many backends behind an in-process gateway (1 = no gateway)")

	mode := fs.String("mode", "constant", "arrival schedule: constant, ramp, burst, or poisson")
	fs.DurationVar(&o.sched.Duration, "duration", 10*time.Second, "schedule length (constant/burst/poisson; caps ramp)")
	fs.Float64Var(&o.sched.RPS, "rps", 20, "arrival rate (constant/poisson) or burst baseline")
	fs.Float64Var(&o.sched.StartRPS, "start", 5, "ramp: first slot's RPS")
	fs.Float64Var(&o.sched.TargetRPS, "target", 25, "ramp: last slot's RPS")
	fs.Float64Var(&o.sched.StepRPS, "step", 5, "ramp: RPS increment per slot")
	fs.DurationVar(&o.sched.Slot, "slot", 2*time.Second, "ramp: duration of each RPS step")
	fs.Float64Var(&o.sched.BurstRPS, "burst-rps", 100, "burst: arrival rate inside a burst window")
	fs.DurationVar(&o.sched.BurstEvery, "burst-every", 2*time.Second, "burst: window period")
	fs.DurationVar(&o.sched.BurstLen, "burst-len", 500*time.Millisecond, "burst: window length")
	fs.Int64Var(&o.sched.Seed, "seed", 1, "seed for poisson arrivals and mix sampling; equal seeds reproduce schedules byte-for-byte")

	fs.StringVar(&o.mixPath, "mix", "", "JSON job-mix file (see examples/mixes); default: uniform timing jobs at load-test depth")
	fs.IntVar(&o.inflight, "inflight", 64, "max concurrently tracked requests; excess arrivals are dropped (open loop)")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request end-to-end budget")
	fs.DurationVar(&o.poll, "poll", 10*time.Millisecond, "status poll interval for in-flight jobs")
	fs.IntVar(&o.retries, "retries", 3, "submit retries after 429/503 responses")
	fs.DurationVar(&o.backoff, "backoff", 100*time.Millisecond, "first retry delay (doubles per attempt)")
	fs.IntVar(&o.batch, "batch", 1, "group this many arrivals per POST /v1/jobs:batch request")
	fs.IntVar(&o.tenants, "tenants", 0, "attribute arrivals to this many synthetic tenants t1..tN (Zipf-ish weights; mix entries may pin their own tenant)")

	fs.DurationVar(&o.sloP95, "slo-p95", 0, "SLO: p95 end-to-end latency bound (0 = unchecked)")
	fs.DurationVar(&o.sloP99, "slo-p99", 0, "SLO: p99 end-to-end latency bound (0 = unchecked)")
	fs.Float64Var(&o.sloErrors, "slo-errors", 0.01, "SLO: max (errors+timeouts+failed)/arrivals")
	fs.StringVar(&o.tenantP99, "tenant-p99", "", "SLO: per-tenant p99 bounds, e.g. live=500ms,batch=5s (a listed tenant with zero completions fails)")

	fs.StringVar(&o.schedPolicy, "sched", server.SchedFIFO, "self-hosted daemon: scheduling policy, fifo or qos")
	fs.DurationVar(&o.shortBudget, "short-budget", 2*time.Second, "self-hosted daemon: qos runtime budget before a predicted-short job is demoted")
	fs.IntVar(&o.shortReserve, "short-reserve", 0, "self-hosted daemon: qos worker slots reserved for short jobs (0 = workers/4, min 1)")
	fs.Float64Var(&o.tenantRate, "tenant-rate", 0, "self-hosted daemon: per-tenant admission quota in jobs/sec (0 = unlimited)")
	fs.IntVar(&o.tenantBurst, "tenant-burst", 0, "self-hosted daemon: per-tenant admission quota burst size")
	fs.StringVar(&o.tenantWeights, "tenant-weights", "", "self-hosted daemon: qos fair-dequeue weights, e.g. live=4,batch=1")

	fs.StringVar(&o.faults, "faults", "", "arm fault injection in the self-hosted daemon (requires -selfhost); see internal/faultinject for the grammar")
	fs.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for fault-injection firing decisions")
	fs.IntVar(&o.cacheSize, "cache", 1024, "self-hosted daemon: result cache entries (1 effectively disables caching for repeat-spec load)")
	fs.DurationVar(&o.jobTimeout, "job-timeout", 0, "self-hosted daemon: per-job execution deadline (0 = none)")
	fs.DurationVar(&o.stuckAfter, "stuck-after", 0, "self-hosted daemon: watchdog threshold for stuck jobs (0 = off)")
	fs.DurationVar(&o.brownout, "brownout", 0, "self-hosted daemon: brownout queue-wait threshold (0 = off)")
	fs.BoolVar(&o.chaos, "chaos", false, "after the run, verify the daemon survived, all jobs settled, and /metrics accounting reconciles")
	fs.BoolVar(&o.hedge, "hedge", false, "self-hosted herd: enable gateway request hedging (requires -selfhost -nodes >= 2)")
	fs.StringVar(&o.repl, "repl", "", "self-hosted herd: replication ack policy (none, async, or sync) — chains each backend's journal to its ring successor, arms gateway takeover, and reconciles acked-job loss after the run (requires -selfhost -nodes >= 2)")

	fs.StringVar(&o.out, "out", "BENCH_loadgen.json", "report output path")
	fs.StringVar(&o.scheduleOut, "schedule-out", "", "also dump the arrival schedule (ns offsets, one per line) to this path")
	fs.BoolVar(&o.dryRun, "dry-run", false, "synthesize the schedule and specs, write -schedule-out, and exit without sending load")
	fs.BoolVar(&o.strict, "strict", false, "exit nonzero when the SLO verdict is FAIL")
	fs.StringVar(&o.statePath, "state", "", "persist resume state (schedule digest + last acked arrival) to this path as the run progresses")
	fs.BoolVar(&o.resume, "resume", false, "continue the partially completed run recorded in -state instead of restarting from arrival 0")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.resume && o.statePath == "" {
		fmt.Fprintln(fs.Output(), "thermload: -resume requires -state")
		return o, fmt.Errorf("-resume requires -state")
	}
	if o.nodes < 1 {
		fmt.Fprintln(fs.Output(), "thermload: -nodes must be >= 1")
		return o, fmt.Errorf("-nodes must be >= 1")
	}
	if o.nodes > 1 && !o.selfhost {
		fmt.Fprintln(fs.Output(), "thermload: -nodes requires -selfhost")
		return o, fmt.Errorf("-nodes requires -selfhost")
	}
	if o.schedPolicy != server.SchedFIFO && !o.selfhost {
		fmt.Fprintln(fs.Output(), "thermload: -sched configures the self-hosted daemon; it requires -selfhost")
		return o, fmt.Errorf("-sched requires -selfhost")
	}
	if o.tenants < 0 {
		fmt.Fprintln(fs.Output(), "thermload: -tenants must be >= 0")
		return o, fmt.Errorf("-tenants must be >= 0")
	}
	if o.hedge && o.nodes < 2 {
		fmt.Fprintln(fs.Output(), "thermload: -hedge requires -selfhost -nodes >= 2")
		return o, fmt.Errorf("-hedge requires -selfhost -nodes >= 2")
	}
	if o.repl != "" {
		if _, err := replication.ParsePolicy(o.repl); err != nil {
			fmt.Fprintln(fs.Output(), "thermload:", err)
			return o, err
		}
		if o.nodes < 2 {
			fmt.Fprintln(fs.Output(), "thermload: -repl requires -selfhost -nodes >= 2")
			return o, fmt.Errorf("-repl requires -selfhost -nodes >= 2")
		}
	}
	o.sched.Mode = loadgen.Mode(*mode)
	return o, nil
}

// parseTenantP99 parses "live=500ms,batch=5s" into SLO.TenantP99.
func parseTenantP99(s string) (map[string]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	bounds := make(map[string]time.Duration)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-p99 entry %q (want tenant=duration)", part)
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad -tenant-p99 entry %q: want a positive duration", part)
		}
		bounds[name] = d
	}
	return bounds, nil
}

// parseTenantWeights parses "live=4,batch=1" into a weight map for the
// self-hosted daemon's fair dequeue.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want tenant=N)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -tenant-weights entry %q: want a positive integer", part)
		}
		weights[name] = w
	}
	return weights, nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	rep, err := run(context.Background(), o, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermload:", err)
		os.Exit(1)
	}
	if o.strict && rep != nil && !rep.SLO.Pass {
		os.Exit(1)
	}
}

// run executes one thermload invocation: synthesize, (optionally)
// self-host, drive, report. A dry run returns a nil report.
func run(ctx context.Context, o options, out *os.File) (*loadgen.Report, error) {
	sched, err := loadgen.Synthesize(o.sched)
	if err != nil {
		return nil, err
	}
	mix := loadgen.DefaultMix()
	if o.mixPath != "" {
		if mix, err = loadgen.LoadMixFile(o.mixPath); err != nil {
			return nil, err
		}
	}
	specs, tenants, err := mix.SampleArrivals(len(sched), o.sched.Seed, o.tenants)
	if err != nil {
		return nil, err
	}
	tenantSLO, err := parseTenantP99(o.tenantP99)
	if err != nil {
		return nil, err
	}
	if o.scheduleOut != "" {
		if err := os.WriteFile(o.scheduleOut, loadgen.FormatSchedule(sched), 0o644); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(out, "thermload: %s schedule, %d arrivals over %.1fs (offered %.1f rps), sha256 %s\n",
		o.sched.Mode, len(sched), sched[len(sched)-1].Seconds(), loadgen.OfferedRPS(sched),
		loadgen.ScheduleSHA256(sched)[:12])
	if o.dryRun {
		return nil, nil
	}

	if o.faults != "" && !o.selfhost {
		return nil, fmt.Errorf("-faults requires -selfhost: refusing to sabotage a shared daemon")
	}
	addr := o.addr
	if o.selfhost {
		var stop func()
		var base string
		if o.nodes > 1 {
			stop, base, err = selfhostHerd(o, out)
		} else {
			stop, base, err = selfhost(o, out)
		}
		if err != nil {
			return nil, err
		}
		defer stop()
		addr = base
		if o.nodes > 1 {
			fmt.Fprintf(out, "thermload: self-hosted herd of %d backends behind gateway at %s\n", o.nodes, addr)
		} else {
			fmt.Fprintf(out, "thermload: self-hosted daemon at %s\n", addr)
		}
		if o.schedPolicy == server.SchedQoS {
			fmt.Fprintf(out, "thermload: qos scheduler (short budget %s, reserve %d, tenant rate %g/s burst %d)\n",
				o.shortBudget, o.shortReserve, o.tenantRate, o.tenantBurst)
		}
	}

	startIndex, onAcked, onShed, err := resumeState(o, sched, out)
	if err != nil {
		return nil, err
	}
	if startIndex >= len(sched) {
		fmt.Fprintf(out, "thermload: nothing to resume; all %d arrivals were already acknowledged\n", len(sched))
		return nil, nil
	}

	client := loadgen.NewClient(addr, o.retries, o.backoff, o.sched.Seed)
	// With -repl armed, record every acked job id: the post-run
	// reconciliation re-polls each to a terminal state, so a failover
	// that silently dropped acked work is caught even though the
	// generator itself gave up on those jobs (poll errors) mid-takeover.
	var (
		ackedMu     sync.Mutex
		ackedIDs    []string
		onSubmitted func(int, string)
	)
	if o.repl != "" {
		onSubmitted = func(_ int, id string) {
			ackedMu.Lock()
			ackedIDs = append(ackedIDs, id)
			ackedMu.Unlock()
		}
	}
	rep, err := loadgen.Run(ctx, loadgen.RunConfig{
		Client:       client,
		Schedule:     sched,
		Specs:        specs,
		Tenants:      tenants,
		MaxInFlight:  o.inflight,
		Timeout:      o.timeout,
		PollInterval: o.poll,
		BatchSize:    o.batch,
		SLO:          loadgen.SLO{P95: o.sloP95, P99: o.sloP99, MaxErrorRate: o.sloErrors, TenantP99: tenantSLO},
		Mode:         o.sched.Mode,
		Seed:         o.sched.Seed,
		StartIndex:   startIndex,
		OnAcked:      onAcked,
		OnShed:       onShed,
		OnSubmitted:  onSubmitted,
	})
	if err != nil {
		return nil, err
	}
	if o.repl != "" {
		ackedMu.Lock()
		ids := ackedIDs
		ackedMu.Unlock()
		rep.Failover = reconcileAcked(ctx, client, o.repl, ids, out)
	}
	if o.out != "" {
		if err := rep.WriteFile(o.out); err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "thermload: report written to %s\n", o.out)
	}
	fmt.Fprint(out, rep.Summary())
	if o.chaos {
		if err := chaosCheck(ctx, client, rep, out); err != nil {
			return rep, fmt.Errorf("chaos check: %w", err)
		}
	}
	return rep, nil
}

// reconcileAcked is the fleet-wide zero-acked-loss audit: every job id
// the daemon acknowledged during the run is re-polled through the
// gateway until it reports a terminal state (done, failed, canceled —
// migrated jobs chase to their adopter transparently). Ids still
// unresolved at the deadline are lost acked jobs: work the fleet took
// responsibility for and then dropped. Under -repl sync that count
// must be zero even across a kill -9; under none it measures exactly
// the loss window the sync ack closes.
func reconcileAcked(ctx context.Context, client *loadgen.Client, policy string, ids []string, out *os.File) *loadgen.FailoverStats {
	fo := &loadgen.FailoverStats{Policy: policy, Acked: len(ids)}
	deadline := time.Now().Add(30 * time.Second)
	pending := ids
	for len(pending) > 0 && time.Now().Before(deadline) && ctx.Err() == nil {
		still := pending[:0:0]
		for _, id := range pending {
			st, err := client.JobStatus(ctx, id)
			if err != nil {
				still = append(still, id) // 404 or unreachable: retry until deadline
				continue
			}
			switch st.State {
			case server.StateDone, server.StateFailed, server.StateCanceled:
				fo.Resolved++
			default:
				still = append(still, id) // queued/running on the adopter; keep polling
			}
		}
		pending = still
		if len(pending) == 0 {
			break
		}
		select {
		case <-ctx.Done():
		//thermlint:timer -- reconcile-poll against a live fleet; wall time is the contract
		case <-time.After(100 * time.Millisecond):
		}
	}
	fo.Lost = len(pending)
	fmt.Fprintf(out, "thermload: failover reconcile (repl=%s): %d acked, %d resolved terminal, %d lost\n",
		policy, fo.Acked, fo.Resolved, fo.Lost)
	return fo
}

// runState is the -state file: enough to verify a later -resume
// targets the same deterministic schedule and to continue from the
// first arrival whose outcome is unknown. LastAcked is the highest
// schedule index below which EVERY arrival settled — acknowledged by
// the daemon or deliberately shed by the open-loop in-flight bound
// (sheds are final: the run counted them as drops and never sent
// them). Acks arrive out of order, so the frontier only advances over
// a contiguous settled prefix; an arrival whose submission errored
// never settles and therefore pins the frontier, so -resume replays it
// instead of silently skipping it. Replayed already-acked arrivals
// above the frontier are safe: their per-arrival idempotency keys
// dedupe server-side.
type runState struct {
	ScheduleSHA256 string `json:"schedule_sha256"`
	Seed           int64  `json:"seed"`
	Mode           string `json:"mode"`
	LastAcked      int    `json:"last_acked"`
}

// resumeState wires -state/-resume: it returns the schedule index to
// start from plus OnAcked/OnShed callbacks persisting progress (nil
// when -state is unset). A -resume against a state file recorded for a
// different schedule is refused — continuing a different run would
// silently skip work.
func resumeState(o options, sched []time.Duration, out *os.File) (int, func(int), func(int), error) {
	if o.statePath == "" {
		return 0, nil, nil, nil
	}
	digest := loadgen.ScheduleSHA256(sched)
	st := runState{ScheduleSHA256: digest, Seed: o.sched.Seed, Mode: string(o.sched.Mode), LastAcked: -1}
	if o.resume {
		b, err := os.ReadFile(o.statePath)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("-resume: %w", err)
		}
		if err := json.Unmarshal(b, &st); err != nil {
			return 0, nil, nil, fmt.Errorf("-resume: bad state file %s: %w", o.statePath, err)
		}
		if st.ScheduleSHA256 != digest {
			return 0, nil, nil, fmt.Errorf("-resume: state %s records schedule %.12s but the flags synthesize %.12s (same -mode/-seed/-rps/... required)",
				o.statePath, st.ScheduleSHA256, digest)
		}
		fmt.Fprintf(out, "thermload: resuming at arrival %d of %d\n", st.LastAcked+1, len(sched))
	} else if err := writeState(o.statePath, st); err != nil {
		// Seed the file before any ack so a run killed early is still
		// resumable from arrival 0.
		return 0, nil, nil, err
	}
	// Settled indices arrive out of order; buffer the ones past the
	// frontier and advance LastAcked only over a contiguous prefix, so
	// resume never skips an arrival that was neither acked nor shed.
	var mu sync.Mutex
	settled := make(map[int]bool)
	mark := func(idx int) {
		mu.Lock()
		defer mu.Unlock()
		if idx <= st.LastAcked || settled[idx] {
			return
		}
		settled[idx] = true
		advanced := false
		for settled[st.LastAcked+1] {
			delete(settled, st.LastAcked+1)
			st.LastAcked++
			advanced = true
		}
		if advanced {
			writeState(o.statePath, st)
		}
	}
	return st.LastAcked + 1, mark, mark, nil
}

// writeState replaces the -state file via a temp-file rename, so a
// kill mid-write (exactly the scenario -resume exists for) can never
// leave a truncated JSON document behind.
func writeState(path string, st runState) error {
	b, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// chaosCheck is the post-run resilience verdict: the daemon is still
// alive, every admitted job reached a terminal state, and the daemon's
// /metrics accounting identity (each submission settled exactly once)
// reconciles with the client-side report.
func chaosCheck(ctx context.Context, client *loadgen.Client, rep *loadgen.Report, out *os.File) error {
	status, err := client.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("daemon not alive after run: %w", err)
	}
	if status != "ok" {
		return fmt.Errorf("daemon health = %q after run, want ok", status)
	}

	// Jobs the generator stopped tracking (timeouts) may still be in
	// flight; give them a bounded window to settle.
	deadline := time.Now().Add(30 * time.Second)
	for {
		queued, err := client.CountJobs(ctx, "queued")
		if err != nil {
			return err
		}
		running, err := client.CountJobs(ctx, "running")
		if err != nil {
			return err
		}
		if queued == 0 && running == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d queued + %d running jobs never settled", queued, running)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		//thermlint:timer -- settle-poll against a live daemon; wall time is the contract
		case <-time.After(50 * time.Millisecond):
		}
	}

	doc, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	jc := func(section, name string) (float64, error) {
		sec, ok := doc[section].(map[string]any)
		if !ok {
			return 0, fmt.Errorf("metrics missing section %q", section)
		}
		v, ok := sec[name].(float64)
		if !ok {
			return 0, fmt.Errorf("metrics %s missing %q", section, name)
		}
		return v, nil
	}
	var vals [7]float64
	for i, key := range []struct{ section, name string }{
		{"jobs", "submitted"}, {"cache", "hits"}, {"jobs", "completed"},
		{"jobs", "failed"}, {"jobs", "canceled"}, {"jobs", "rejected"},
		{"jobs", "migrated"},
	} {
		if vals[i], err = jc(key.section, key.name); err != nil {
			return err
		}
	}
	submitted, terminal := vals[0], vals[1]+vals[2]+vals[3]+vals[4]+vals[5]+vals[6]
	if submitted != terminal {
		return fmt.Errorf("accounting identity broken: submitted %.0f != hits+completed+failed+canceled+rejected+migrated %.0f",
			submitted, terminal)
	}
	// A hedged herd run reaps losing submit attempts by canceling them
	// gateway-side; those cancels never belonged to the generator, so
	// reconcile them out of the fleet's canceled count. Single-node runs
	// have no gateway section in the merged document — zero there.
	var hedgeCancels float64
	if gwsec, ok := doc["gateway"].(map[string]any); ok {
		if v, ok := gwsec["hedge_cancels"].(float64); ok {
			hedgeCancels = v
		}
	}
	// When the generator saw every job through (no timeouts or transport
	// errors), its failure counts must agree with the daemon's exactly.
	if rep.Achieved.Timeouts == 0 && rep.Achieved.Errors == 0 {
		if vals[3] != float64(rep.Achieved.Failed) || vals[4] != float64(rep.Achieved.Canceled)+hedgeCancels {
			return fmt.Errorf("error accounting mismatch: daemon failed=%.0f canceled=%.0f, report failed=%d canceled=%d (+%.0f hedge cancels)",
				vals[3], vals[4], rep.Achieved.Failed, rep.Achieved.Canceled, hedgeCancels)
		}
	}
	// The failover reconciliation (when -repl ran one) is part of the
	// chaos verdict: acked work the fleet dropped is the one loss the
	// replication chain exists to prevent.
	if rep.Failover != nil && rep.Failover.Lost > 0 {
		return fmt.Errorf("acked-job loss: %d of %d acked jobs never reached a terminal state (repl=%s)",
			rep.Failover.Lost, rep.Failover.Acked, rep.Failover.Policy)
	}
	panics, _ := jc("jobs", "panics_recovered")
	restarts, _ := jc("workers", "restarts")
	brownouts, _ := jc("admission", "brownout_rejects")
	fmt.Fprintf(out, "thermload: chaos check OK — daemon alive, %.0f submissions all settled (%.0f panics recovered, %.0f worker restarts, %.0f brownout rejects)\n",
		submitted, panics, restarts, brownouts)
	return nil
}

// daemonConfig builds the server.Config shared by every self-hosted
// backend: o's resilience knobs plus the QoS scheduler knobs.
func daemonConfig(o options) (server.Config, error) {
	weights, err := parseTenantWeights(o.tenantWeights)
	if err != nil {
		return server.Config{}, err
	}
	return server.Config{
		Workers:       runtime.NumCPU(),
		QueueDepth:    1024,
		CacheSize:     o.cacheSize,
		JobTimeout:    o.jobTimeout,
		StuckAfter:    o.stuckAfter,
		BrownoutAfter: o.brownout,
		SchedPolicy:   o.schedPolicy,
		ShortBudget:   o.shortBudget,
		ShortReserve:  o.shortReserve,
		TenantRate:    o.tenantRate,
		TenantBurst:   o.tenantBurst,
		TenantWeights: weights,
	}, nil
}

// selfhost starts an in-process daemon on a loopback port, configured
// with o's resilience knobs and (optionally) armed faults, and returns
// a stop function that drains it.
func selfhost(o options, out *os.File) (func(), string, error) {
	cfg, err := daemonConfig(o)
	if err != nil {
		return nil, "", err
	}
	if o.faults != "" {
		reg := faultinject.New()
		if err := reg.Arm(o.faults, o.faultSeed); err != nil {
			return nil, "", err
		}
		cfg.Faults = reg
		fmt.Fprintf(out, "thermload: fault points armed (seed %d): %s\n",
			o.faultSeed, strings.Join(reg.Points(), ", "))
	}
	srv, err := server.New(cfg)
	if err != nil {
		return nil, "", err
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		hs.Shutdown(ctx)
	}
	return stop, "http://" + ln.Addr().String(), nil
}

// herdNode is one self-hosted backend of a -nodes run.
type herdNode struct {
	name string
	srv  *server.Server
	hs   *http.Server
	ln   net.Listener
	repl *replication.Streamer
}

// adminCall hits the in-process gateway's admin API with the selfhost
// token; the join/drain watchers use it to change ring membership
// mid-run exactly the way an operator would — over the wire.
func adminCall(method, url string, body any) error {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+selfhostAdminToken)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: HTTP %d", method, url, resp.StatusCode)
	}
	return nil
}

// selfhostHerd starts o.nodes in-process daemons behind an in-process
// gateway and returns the gateway's base URL. All components share one
// fault registry, so a single -faults spec can arm backend-side points
// (job.exec, ...), gateway-side points (gw.forward, gw.probe,
// gw.splitbrain, gw.straggler, gw.hedge, gw.breaker, gw.admin), and
// the harness's own watcher-driven points:
//
//   - selfhost.backend.kill — the LAST backend dies mid-run: an abrupt
//     drain (queued jobs canceled, new submits 503) with the HTTP
//     listener kept up, exactly the wire behavior of a SIGTERM'd
//     daemon, so /metrics stays reachable and the fleet-wide
//     accounting identity still reconciles.
//   - selfhost.backend.join — an extra backend starts mid-run and is
//     added through the gateway's authenticated admin API; it probes
//     to healthy and takes its deterministic ring shard live.
//   - selfhost.backend.drain — the LAST backend is pinned draining
//     through the admin API; new placements fail over while its
//     admitted jobs keep settling (it is never deleted, so the
//     fleet-wide accounting still sees them).
//   - selfhost.backend.kill9 — the LAST backend dies the hard way:
//     listener and connections torn down instantly, replication stream
//     silenced, workers reaped with nothing drained or journaled — a
//     kill -9 at the wire. With -repl armed the gateway's takeover
//     adopts its replica journal onto the ring successor.
//
// The gateway always carries the selfhost admin token (the herd is one
// process; the token exists for the watchers), and -hedge switches on
// request hedging with a CI-friendly 1s breaker cooldown. -repl chains
// each backend's journal to its ring successor and arms the gateway's
// takeover (250ms after a node goes down) plus proactive
// drain-migration.
func selfhostHerd(o options, out *os.File) (func(), string, error) {
	var reg *faultinject.Registry
	if o.faults != "" {
		reg = faultinject.New()
		if err := reg.Arm(o.faults, o.faultSeed); err != nil {
			return nil, "", err
		}
		fmt.Fprintf(out, "thermload: fault points armed (seed %d): %s\n",
			o.faultSeed, strings.Join(reg.Points(), ", "))
	}

	var nodesMu sync.Mutex
	nodes := make([]*herdNode, 0, o.nodes)
	backends := make([]gateway.Backend, 0, o.nodes)
	cleanup := func() {
		nodesMu.Lock()
		snapshot := append([]*herdNode(nil), nodes...)
		nodesMu.Unlock()
		for _, n := range snapshot {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			n.srv.Drain(ctx)
			n.hs.Shutdown(ctx)
			cancel()
			if n.repl != nil {
				n.repl.Close()
			}
		}
	}
	cfg, err := daemonConfig(o)
	if err != nil {
		return nil, "", err
	}
	cfg.Faults = reg

	// The replication chain: each backend streams its journal to its
	// ring successor, resolved lazily per send against the same vnode
	// hash the gateway routes by — so the chain a streamer picks is the
	// chain takeover will consult. A node marked dead (kill9) stops
	// streaming AND stops being chosen as anyone's target, the wire
	// silence of a killed process.
	replPolicy, err := replication.ParsePolicy(o.repl)
	if err != nil {
		return nil, "", err
	}
	var (
		chainMu   sync.Mutex
		chainURL  = make(map[string]string)
		chainDead = make(map[string]bool)
		chainRing = gateway.NewRing(0)
	)
	newStreamer := func(name string) (*replication.Streamer, error) {
		if replPolicy == replication.PolicyNone {
			return nil, nil
		}
		return replication.New(replication.Options{
			Policy: replPolicy,
			Origin: name,
			Target: func() (string, string) {
				chainMu.Lock()
				defer chainMu.Unlock()
				if chainDead[name] {
					return "", ""
				}
				succ := chainRing.SuccessorOf(name)
				if succ == "" || chainDead[succ] {
					return "", ""
				}
				return succ, chainURL[succ]
			},
			Faults: reg,
		})
	}
	startBackend := func(name string) (*herdNode, error) {
		ncfg := cfg
		if o.repl != "" {
			st, err := newStreamer(name)
			if err != nil {
				return nil, err
			}
			ncfg.NodeName = name
			ncfg.Repl = st
		}
		srv, err := server.New(ncfg)
		if err != nil {
			if ncfg.Repl != nil {
				ncfg.Repl.Close()
			}
			return nil, err
		}
		srv.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			sctx, cancel := context.WithTimeout(context.Background(), time.Second)
			srv.Drain(sctx)
			cancel()
			if ncfg.Repl != nil {
				ncfg.Repl.Close()
			}
			return nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		n := &herdNode{name: name, srv: srv, hs: hs, ln: ln, repl: ncfg.Repl}
		chainMu.Lock()
		chainURL[name] = "http://" + ln.Addr().String()
		chainRing.Add(name)
		chainMu.Unlock()
		nodesMu.Lock()
		nodes = append(nodes, n)
		nodesMu.Unlock()
		return n, nil
	}
	for i := 0; i < o.nodes; i++ {
		n, err := startBackend(fmt.Sprintf("n%d", i))
		if err != nil {
			cleanup()
			return nil, "", err
		}
		backends = append(backends, gateway.Backend{Name: n.name, URL: "http://" + n.ln.Addr().String()})
	}

	gwCfg := gateway.Config{
		Backends:        backends,
		ProbeInterval:   250 * time.Millisecond,
		Faults:          reg,
		Hedge:           o.hedge,
		BreakerCooldown: time.Second,
		AdminToken:      selfhostAdminToken,
	}
	if o.repl != "" {
		// Arm takeover even under -repl none: the A/B's control arm runs
		// the same failover machinery against an empty replica store, so
		// the loss it measures is the ack policy's, not the harness's.
		gwCfg.TakeoverAfter = 250 * time.Millisecond
	}
	gw, err := gateway.New(gwCfg)
	if err != nil {
		cleanup()
		return nil, "", err
	}
	gw.Start()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		cleanup()
		return nil, "", err
	}
	ghs := &http.Server{Handler: gw}
	go ghs.Serve(gln)
	gwURL := "http://" + gln.Addr().String()

	// Chaos watchers: each polls its harness fault point; the armed
	// spec's delay/count/probability decide when (and whether) it fires,
	// and the watcher then runs its action once. Victims are always the
	// LAST initial backend — deterministic, so a test or CI assertion
	// knows which shard remapped.
	watchStop := make(chan struct{})
	var watchWG sync.WaitGroup
	watch := func(fire func() error, act func(fired error)) {
		if reg == nil {
			return
		}
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			for {
				if err := fire(); err != nil {
					act(err)
					return
				}
				select {
				case <-watchStop:
					return
				//thermlint:timer -- chaos re-fire cadence against live processes
				case <-time.After(250 * time.Millisecond):
				}
			}
		}()
	}
	victim := nodes[len(nodes)-1]
	watch(func() error { return reg.Fire(faultBackendKill) }, func(fired error) {
		fmt.Fprintf(out, "thermload: CHAOS: killing backend %s (%v)\n", victim.name, fired)
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // expired deadline = abrupt drain
		victim.srv.Drain(ctx)
	})
	watch(func() error { return reg.Fire(faultBackendKill9) }, func(fired error) {
		fmt.Fprintf(out, "thermload: CHAOS: kill -9 backend %s (%v)\n", victim.name, fired)
		// Order matters: go wire-silent first (no farewell replication or
		// cancel events — a killed process sends nothing), then tear down
		// the listener and every live connection, then reap the workers.
		chainMu.Lock()
		chainDead[victim.name] = true
		chainMu.Unlock()
		victim.hs.Close()
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // expired deadline = immediate worker reap, nothing drains
		victim.srv.Drain(ctx)
	})
	watch(func() error { return reg.Fire(faultBackendJoin) }, func(fired error) {
		name := fmt.Sprintf("n%d", o.nodes)
		n, err := startBackend(name)
		if err != nil {
			fmt.Fprintf(out, "thermload: CHAOS: join of backend %s failed: %v\n", name, err)
			return
		}
		fmt.Fprintf(out, "thermload: CHAOS: joining backend %s mid-run (%v)\n", name, fired)
		err = adminCall(http.MethodPost, gwURL+"/v1/admin/nodes",
			map[string]string{"name": name, "url": "http://" + n.ln.Addr().String()})
		if err != nil {
			fmt.Fprintf(out, "thermload: CHAOS: admin add of %s failed: %v\n", name, err)
		}
	})
	watch(func() error { return reg.Fire(faultBackendDrain) }, func(fired error) {
		fmt.Fprintf(out, "thermload: CHAOS: draining backend %s mid-run (%v)\n", victim.name, fired)
		if err := adminCall(http.MethodPost, gwURL+"/v1/admin/nodes/"+victim.name+"/drain", nil); err != nil {
			fmt.Fprintf(out, "thermload: CHAOS: admin drain of %s failed: %v\n", victim.name, err)
		}
	})

	stop := func() {
		close(watchStop)
		watchWG.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ghs.Shutdown(ctx)
		gw.Close()
		cleanup()
	}
	return stop, gwURL, nil
}
