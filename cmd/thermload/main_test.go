package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"thermalherd/internal/loadgen"
)

// checkGoroutineLeak asserts the self-hosted fleet wound down: after
// run() returns, the goroutine count must settle back near the pre-run
// baseline. A leaked gateway prober, hedge attempt, admin watcher, or
// journal flusher keeps the count elevated and fails here — the
// runtime-level counterpart of thermlint's static goleak proof.
func checkGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	const slack = 8 // runtime/test machinery and netpoll wiggle room
	deadline := time.Now().Add(5 * time.Second)
	after := runtime.NumGoroutine()
	for after > before+slack && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before+slack {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak after herd run: before=%d after=%d\n%s", before, after, buf[:n])
	}
}

// TestScheduleDumpByteIdentical is the acceptance determinism check at
// the CLI layer: two `-mode ramp -seed 42` invocations dump
// byte-identical arrival schedules.
func TestScheduleDumpByteIdentical(t *testing.T) {
	dir := t.TempDir()
	dump := func(path string) []byte {
		t.Helper()
		o, err := parseFlags([]string{
			"-mode", "ramp", "-start", "5", "-target", "25", "-step", "5",
			"-slot", "500ms", "-seed", "42",
			"-dry-run", "-schedule-out", path, "-out", "",
		})
		if err != nil {
			t.Fatal(err)
		}
		devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer devnull.Close()
		if _, err := run(context.Background(), o, devnull); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := dump(filepath.Join(dir, "a.txt"))
	b := dump(filepath.Join(dir, "b.txt"))
	if len(a) == 0 {
		t.Fatal("schedule dump is empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two -seed 42 ramp runs dumped different schedules")
	}
}

// TestSelfhostSmoke runs a short self-hosted burst end to end and
// checks the report file carries the fields the bench trajectory
// depends on.
func TestSelfhostSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~1s self-hosted load run")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_loadgen.json")
	o, err := parseFlags([]string{
		"-selfhost",
		"-mode", "burst", "-rps", "30", "-duration", "800ms",
		"-burst-rps", "150", "-burst-every", "300ms", "-burst-len", "100ms",
		"-seed", "42", "-batch", "4", "-inflight", "128",
		"-timeout", "20s", "-poll", "2ms",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	rep, err := run(context.Background(), o, devnull)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk loadgen.Report
	if err := json.Unmarshal(b, &onDisk); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if onDisk.ScheduleSHA256 != rep.ScheduleSHA256 || onDisk.ScheduleSHA256 == "" {
		t.Fatalf("schedule digest mismatch: disk %q vs run %q", onDisk.ScheduleSHA256, rep.ScheduleSHA256)
	}
	if onDisk.Latency.Count == 0 || onDisk.Latency.P99Ms < onDisk.Latency.P50Ms {
		t.Fatalf("implausible latency stats: %+v", onDisk.Latency)
	}
	if onDisk.Achieved.RPS <= 0 || onDisk.Offered.Arrivals == 0 {
		t.Fatalf("implausible throughput stats: %+v", onDisk)
	}
	// Batched submission: at most ceil(N/4) submit requests.
	maxReqs := int64((onDisk.Offered.Arrivals + 3) / 4)
	if onDisk.Achieved.SubmitHTTPRequests > maxReqs+onDisk.Achieved.Retries {
		t.Fatalf("submit requests %d exceed ceil(%d/4)=%d (+%d retries)",
			onDisk.Achieved.SubmitHTTPRequests, onDisk.Offered.Arrivals, maxReqs, onDisk.Achieved.Retries)
	}
}

// TestChaosScenarioSelfhost is the loadgen-side chaos acceptance run:
// a fault-injected self-hosted daemon takes a full schedule with two
// guaranteed executor panics, the generator's report reconciles with
// the daemon's /metrics (run() fails otherwise via -chaos), and the
// injected failures surface as exactly the expected failed jobs.
func TestChaosScenarioSelfhost(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~1s self-hosted chaos run")
	}
	o, err := parseFlags([]string{
		"-selfhost", "-chaos",
		"-faults", "job.exec=panic:chaos-scenario,count:2;rescache.put=error:dropped,count:3",
		"-fault-seed", "7", "-stuck-after", "10s",
		"-mode", "constant", "-rps", "40", "-duration", "500ms",
		"-seed", "42", "-inflight", "128",
		"-timeout", "20s", "-poll", "2ms",
		"-slo-errors", "1",
		"-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	rep, err := run(context.Background(), o, devnull)
	if err != nil {
		t.Fatalf("chaos run: %v", err) // includes any chaos-check failure
	}
	// The two injected panics become exactly two failed jobs; the
	// daemon survives them (chaosCheck verified liveness and the
	// accounting identity before run returned).
	if rep.Achieved.Failed != 2 {
		t.Fatalf("failed = %d, want exactly the 2 injected panics", rep.Achieved.Failed)
	}
	if rep.Achieved.Errors != 0 || rep.Achieved.Timeouts != 0 {
		t.Fatalf("chaos run saw transport errors=%d timeouts=%d", rep.Achieved.Errors, rep.Achieved.Timeouts)
	}
	if rep.Achieved.Done == 0 {
		t.Fatal("no jobs completed around the injected faults")
	}
}

// TestFaultsRequireSelfhost: arming faults against an external daemon
// is refused outright.
func TestFaultsRequireSelfhost(t *testing.T) {
	o, err := parseFlags([]string{
		"-faults", "job.exec=panic:x", "-mode", "constant", "-rps", "5", "-duration", "1s", "-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run(context.Background(), o, os.Stderr); err == nil {
		t.Fatal("-faults without -selfhost accepted")
	}
}

func TestParseFlagsBadMode(t *testing.T) {
	o, err := parseFlags([]string{"-mode", "warp", "-dry-run"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run(context.Background(), o, os.Stderr); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunRejectsBadMixFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mix.json")
	if err := os.WriteFile(path, []byte(`{"entries":[{"workload":"doom2016"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := parseFlags([]string{"-mix", path, "-mode", "constant", "-rps", "5", "-duration", "1s"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := run(ctx, o, os.Stderr); err == nil {
		t.Fatal("mix with unknown workload accepted")
	}
}

// TestResumeFrontierContiguous: the resume frontier advances only over
// a contiguous prefix of settled arrivals — out-of-order acks are
// buffered, sheds settle their index like an ack, and an arrival that
// never settles (an errored submit) pins the frontier so -resume
// replays it instead of silently skipping it.
func TestResumeFrontierContiguous(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.json")
	o, err := parseFlags([]string{
		"-mode", "constant", "-rps", "10", "-duration", "1s", "-seed", "3",
		"-state", state, "-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := loadgen.Synthesize(o.sched)
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	start, onAcked, onShed, err := resumeState(o, sched, devnull)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 || onAcked == nil || onShed == nil {
		t.Fatalf("fresh state: start=%d onAcked=%v onShed=%v", start, onAcked == nil, onShed == nil)
	}
	lastAcked := func() int {
		t.Helper()
		var st runState
		b, err := os.ReadFile(state)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("state file must always be complete JSON: %v", err)
		}
		return st.LastAcked
	}
	onAcked(0)
	onAcked(1)
	if got := lastAcked(); got != 1 {
		t.Fatalf("contiguous acks 0,1: frontier = %d, want 1", got)
	}
	// Index 2 never settles (its submit errored); later acks buffer
	// without advancing the frontier past the hole.
	onAcked(3)
	onAcked(5)
	onAcked(4)
	if got := lastAcked(); got != 1 {
		t.Fatalf("unsettled index 2 must pin the frontier at 1, got %d", got)
	}
	// A shed is a final disposition: it fills the hole and the buffered
	// acks drain through.
	onShed(2)
	if got := lastAcked(); got != 5 {
		t.Fatalf("after shed fills the hole, frontier = %d, want 5", got)
	}
}

// TestResumeContinuesPartialRun exercises -state/-resume: a finished
// run resumes as a no-op, a rewound state file resumes only the
// unacked tail, and a state file from a different schedule is refused.
func TestResumeContinuesPartialRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~1s self-hosted resume runs")
	}
	dir := t.TempDir()
	state := filepath.Join(dir, "state.json")
	flags := func(extra ...string) []string {
		base := []string{
			"-selfhost", "-mode", "constant", "-rps", "40", "-duration", "500ms",
			"-seed", "7", "-inflight", "64", "-timeout", "20s", "-poll", "2ms",
			"-out", "", "-state", state,
		}
		return append(base, extra...)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	mustRun := func(args []string) *loadgen.Report {
		t.Helper()
		o, err := parseFlags(args)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := run(context.Background(), o, devnull)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rep1 := mustRun(flags())
	if rep1 == nil || rep1.Achieved.Drops != 0 {
		t.Fatalf("first run: %+v", rep1)
	}
	total := rep1.Offered.Arrivals

	var st struct {
		ScheduleSHA256 string `json:"schedule_sha256"`
		LastAcked      int    `json:"last_acked"`
	}
	b, err := os.ReadFile(state)
	if err != nil {
		t.Fatalf("state file: %v", err)
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("state file: %v", err)
	}
	if st.LastAcked != total-1 {
		t.Fatalf("state last_acked = %d, want %d (every arrival acked)", st.LastAcked, total-1)
	}
	if st.ScheduleSHA256 != rep1.ScheduleSHA256 {
		t.Fatalf("state digest %q != report digest %q", st.ScheduleSHA256, rep1.ScheduleSHA256)
	}

	// Resuming a finished run offers nothing and returns no report.
	if rep := mustRun(flags("-resume")); rep != nil {
		t.Fatalf("resume of a finished run produced a report: %+v", rep)
	}

	// Rewind the state to mid-run: the resume drives only the tail.
	st.LastAcked = total/2 - 1
	b, _ = json.Marshal(map[string]any{
		"schedule_sha256": st.ScheduleSHA256, "seed": 7, "mode": "constant",
		"last_acked": st.LastAcked,
	})
	if err := os.WriteFile(state, b, 0o644); err != nil {
		t.Fatal(err)
	}
	rep3 := mustRun(flags("-resume"))
	if rep3 == nil {
		t.Fatal("mid-run resume produced no report")
	}
	wantTail := total - (st.LastAcked + 1)
	if rep3.Achieved.Submitted != wantTail {
		t.Fatalf("resumed run submitted %d arrivals, want the %d-arrival tail",
			rep3.Achieved.Submitted, wantTail)
	}

	// Different rate flags synthesize a different schedule; the stale
	// state file must be refused, not silently skipped past.
	o, err := parseFlags(flags("-resume", "-rps", "50"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run(context.Background(), o, devnull); err == nil ||
		!strings.Contains(err.Error(), "records schedule") {
		t.Fatalf("resume against a different schedule: err = %v, want digest refusal", err)
	}
}

// TestHerdSelfhost drives a full schedule through -nodes 3: three
// in-process backends behind the in-process gateway, all jobs settle,
// and the fleet-wide accounting identity reconciles (-chaos enforces
// it inside run()).
func TestHerdSelfhost(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~1s self-hosted herd run")
	}
	o, err := parseFlags([]string{
		"-selfhost", "-nodes", "3", "-chaos",
		"-mode", "constant", "-rps", "40", "-duration", "800ms",
		"-seed", "42", "-inflight", "128",
		"-timeout", "20s", "-poll", "2ms",
		"-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	rep, err := run(context.Background(), o, devnull)
	if err != nil {
		t.Fatalf("herd run: %v", err) // includes the fleet-wide chaos check
	}
	if rep.Achieved.Errors != 0 || rep.Achieved.Timeouts != 0 || rep.Achieved.Failed != 0 {
		t.Fatalf("clean herd run saw errors=%d timeouts=%d failed=%d",
			rep.Achieved.Errors, rep.Achieved.Timeouts, rep.Achieved.Failed)
	}
	if rep.Achieved.Done != int(rep.Offered.Arrivals) {
		t.Fatalf("done=%d, want all %d arrivals", rep.Achieved.Done, rep.Offered.Arrivals)
	}
}

// TestHerdSelfhostBackendKill is the herd chaos acceptance run: a
// backend dies mid-schedule, its shard fails over, no acked job is
// lost, and the fleet-wide accounting identity still balances. The
// generous retry budget absorbs the 503s the dying backend emits
// while membership converges.
func TestHerdSelfhostBackendKill(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~2s self-hosted herd kill run")
	}
	o, err := parseFlags([]string{
		"-selfhost", "-nodes", "3", "-chaos",
		"-faults", "selfhost.backend.kill=error:kill,count:1,delay:400ms",
		"-mode", "constant", "-rps", "40", "-duration", "1200ms",
		"-seed", "42", "-inflight", "128",
		"-timeout", "20s", "-poll", "2ms", "-retries", "5",
		"-slo-errors", "1",
		"-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	before := runtime.NumGoroutine()
	rep, err := run(context.Background(), o, devnull)
	if err != nil {
		t.Fatalf("herd kill run: %v", err) // chaos check = zero lost acked jobs
	}
	checkGoroutineLeak(t, before)
	// Every acked job reached a terminal state; canceled jobs (queued on
	// the victim at kill time) are allowed, silent loss is not.
	settled := rep.Achieved.Done + rep.Achieved.Failed + rep.Achieved.Canceled
	acked := int(rep.Offered.Arrivals) - rep.Achieved.Drops - rep.Achieved.Errors - rep.Achieved.Timeouts
	if settled != acked {
		t.Fatalf("settled=%d != acked=%d (done=%d failed=%d canceled=%d drops=%d errors=%d timeouts=%d)",
			settled, acked, rep.Achieved.Done, rep.Achieved.Failed, rep.Achieved.Canceled,
			rep.Achieved.Drops, rep.Achieved.Errors, rep.Achieved.Timeouts)
	}
	if rep.Achieved.Done == 0 {
		t.Fatal("no jobs completed around the backend kill")
	}
}

// TestHerdSelfhostHedged is the straggler acceptance run: one backend
// is slowed 250ms per forward (gw.straggler targets the lexically-last
// node), hedging re-issues the slow attempts to the ring successor,
// and the run still settles cleanly — the chaos check inside run()
// reconciles the gateway's hedge cancels against the fleet's canceled
// count, so a duplicate admission or a leaked loser fails the test.
func TestHerdSelfhostHedged(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~2s self-hosted herd hedge run")
	}
	o, err := parseFlags([]string{
		"-selfhost", "-nodes", "3", "-hedge", "-chaos",
		"-faults", "gw.straggler=delay:250ms",
		"-mode", "constant", "-rps", "40", "-duration", "1200ms",
		"-seed", "42", "-inflight", "128",
		"-timeout", "20s", "-poll", "2ms", "-retries", "5",
		"-slo-errors", "1",
		"-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	rep, err := run(context.Background(), o, devnull)
	if err != nil {
		t.Fatalf("herd hedge run: %v", err) // chaos check = no duplicates, cancels reconcile
	}
	settled := rep.Achieved.Done + rep.Achieved.Failed + rep.Achieved.Canceled
	acked := int(rep.Offered.Arrivals) - rep.Achieved.Drops - rep.Achieved.Errors - rep.Achieved.Timeouts
	if settled != acked {
		t.Fatalf("settled=%d != acked=%d (done=%d failed=%d canceled=%d drops=%d errors=%d timeouts=%d)",
			settled, acked, rep.Achieved.Done, rep.Achieved.Failed, rep.Achieved.Canceled,
			rep.Achieved.Drops, rep.Achieved.Errors, rep.Achieved.Timeouts)
	}
	if rep.Achieved.Done == 0 {
		t.Fatal("no jobs completed through the straggling herd")
	}
}

// TestHerdSelfhostResizeJoin: a fourth backend joins mid-run through
// the gateway's admin API, probes to healthy, and takes its ring shard
// live. Adding capacity disturbs nothing: every arrival completes and
// the fleet-wide accounting (which now spans four nodes) reconciles.
func TestHerdSelfhostResizeJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~2s self-hosted herd resize run")
	}
	o, err := parseFlags([]string{
		"-selfhost", "-nodes", "3", "-chaos",
		"-faults", "selfhost.backend.join=error:join,count:1,delay:300ms",
		"-mode", "constant", "-rps", "40", "-duration", "1200ms",
		"-seed", "42", "-inflight", "128",
		"-timeout", "20s", "-poll", "2ms", "-retries", "5",
		"-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	before := runtime.NumGoroutine()
	rep, err := run(context.Background(), o, devnull)
	if err != nil {
		t.Fatalf("herd resize run: %v", err) // chaos check spans the joined node
	}
	checkGoroutineLeak(t, before)
	if rep.Achieved.Errors != 0 || rep.Achieved.Timeouts != 0 || rep.Achieved.Failed != 0 {
		t.Fatalf("join run saw errors=%d timeouts=%d failed=%d",
			rep.Achieved.Errors, rep.Achieved.Timeouts, rep.Achieved.Failed)
	}
	if rep.Achieved.Done != int(rep.Offered.Arrivals) {
		t.Fatalf("done=%d, want all %d arrivals (lost a job across the resize)", rep.Achieved.Done, rep.Offered.Arrivals)
	}
}

// TestHerdSelfhostDrain: the last backend is pinned draining mid-run
// through the admin API. The gateway stops placing new work there but
// the backend itself keeps running, so every job it had already
// admitted still completes — a drain loses nothing.
func TestHerdSelfhostDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~2s self-hosted herd drain run")
	}
	o, err := parseFlags([]string{
		"-selfhost", "-nodes", "3", "-chaos",
		"-faults", "selfhost.backend.drain=error:drain,count:1,delay:300ms",
		"-mode", "constant", "-rps", "40", "-duration", "1200ms",
		"-seed", "42", "-inflight", "128",
		"-timeout", "20s", "-poll", "2ms", "-retries", "5",
		"-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	before := runtime.NumGoroutine()
	rep, err := run(context.Background(), o, devnull)
	if err != nil {
		t.Fatalf("herd drain run: %v", err)
	}
	checkGoroutineLeak(t, before)
	if rep.Achieved.Errors != 0 || rep.Achieved.Timeouts != 0 || rep.Achieved.Failed != 0 {
		t.Fatalf("drain run saw errors=%d timeouts=%d failed=%d",
			rep.Achieved.Errors, rep.Achieved.Timeouts, rep.Achieved.Failed)
	}
	if rep.Achieved.Done != int(rep.Offered.Arrivals) {
		t.Fatalf("done=%d, want all %d arrivals (a drain must lose nothing)", rep.Achieved.Done, rep.Offered.Arrivals)
	}
}

// TestHerdSelfhostReplKill9 is the failover acceptance run: a 3-node
// herd chained with -repl sync loses a backend to a kill -9 (listener
// torn down, replication silenced, nothing drained) and the gateway's
// takeover adopts the victim's replica journal onto its ring
// successor. The post-run reconciliation re-polls every acked job id
// through the gateway — with a sync ack, zero may be lost — and the
// goroutine count must settle afterwards, proving the takeover and
// adoption machinery (takeover goroutine, adopted-frontier watcher,
// streamer flushers) all wound down.
func TestHerdSelfhostReplKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~4s self-hosted failover run")
	}
	o, err := parseFlags([]string{
		"-selfhost", "-nodes", "3", "-repl", "sync", "-chaos",
		"-faults", "selfhost.backend.kill9=error:kill9,count:1,delay:400ms",
		"-mode", "constant", "-rps", "40", "-duration", "1500ms",
		"-seed", "42", "-inflight", "128",
		"-timeout", "20s", "-poll", "2ms", "-retries", "5",
		"-slo-errors", "1",
		"-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	before := runtime.NumGoroutine()
	rep, err := run(context.Background(), o, devnull)
	if err != nil {
		t.Fatalf("failover run: %v", err) // chaos check = zero acked-job loss
	}
	checkGoroutineLeak(t, before)
	if rep.Failover == nil {
		t.Fatal("-repl run produced no failover reconciliation")
	}
	if rep.Failover.Acked == 0 {
		t.Fatal("reconciliation saw no acked jobs")
	}
	if rep.Failover.Lost != 0 {
		t.Fatalf("sync replication lost %d of %d acked jobs across the kill -9",
			rep.Failover.Lost, rep.Failover.Acked)
	}
	if rep.Failover.Resolved < rep.Failover.Acked {
		t.Fatalf("resolved %d < acked %d with zero lost", rep.Failover.Resolved, rep.Failover.Acked)
	}
	if rep.Achieved.Done == 0 {
		t.Fatal("no jobs completed around the kill -9")
	}
}

// TestHerdSelfhostReplDrainMigrate: with replication armed, a drain is
// proactive herding — the gateway migrates the draining backend's
// queued jobs to its ring successor instead of waiting them out. Every
// acked job still reaches a terminal state (the migrated ones on their
// adopter, chased transparently through the gateway), and the herd
// winds down without leaking the migration goroutines.
func TestHerdSelfhostReplDrainMigrate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping ~4s self-hosted drain-migration run")
	}
	o, err := parseFlags([]string{
		"-selfhost", "-nodes", "3", "-repl", "sync", "-chaos",
		"-faults", "selfhost.backend.drain=error:drain,count:1,delay:300ms",
		"-mode", "constant", "-rps", "40", "-duration", "1200ms",
		"-seed", "42", "-inflight", "128",
		"-timeout", "20s", "-poll", "2ms", "-retries", "5",
		"-slo-errors", "1",
		"-out", "",
	})
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	before := runtime.NumGoroutine()
	rep, err := run(context.Background(), o, devnull)
	if err != nil {
		t.Fatalf("drain-migration run: %v", err)
	}
	checkGoroutineLeak(t, before)
	if rep.Failover == nil || rep.Failover.Lost != 0 {
		t.Fatalf("drain with migration lost acked jobs: %+v", rep.Failover)
	}
	if rep.Achieved.Done == 0 {
		t.Fatal("no jobs completed across the migrating drain")
	}
}

// TestNodesFlagValidation: -nodes below 1 or without -selfhost is
// rejected at flag parsing, as are -hedge and -repl without a herd to
// span.
func TestNodesFlagValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-nodes", "0"}); err == nil {
		t.Fatal("-nodes 0 accepted")
	}
	if _, err := parseFlags([]string{"-nodes", "3"}); err == nil {
		t.Fatal("-nodes 3 without -selfhost accepted")
	}
	if _, err := parseFlags([]string{"-selfhost", "-nodes", "3"}); err != nil {
		t.Fatalf("-selfhost -nodes 3 rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-selfhost", "-hedge"}); err == nil {
		t.Fatal("-hedge on a single node accepted")
	}
	if _, err := parseFlags([]string{"-selfhost", "-nodes", "2", "-hedge"}); err != nil {
		t.Fatalf("-selfhost -nodes 2 -hedge rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-selfhost", "-repl", "sync"}); err == nil {
		t.Fatal("-repl on a single node accepted")
	}
	if _, err := parseFlags([]string{"-selfhost", "-nodes", "2", "-repl", "paxos"}); err == nil {
		t.Fatal("unknown -repl policy accepted")
	}
	if _, err := parseFlags([]string{"-selfhost", "-nodes", "2", "-repl", "sync"}); err != nil {
		t.Fatalf("-selfhost -nodes 2 -repl sync rejected: %v", err)
	}
}
